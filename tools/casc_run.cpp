// casc-run: assemble a .casm file and run it on a simulated machine.
//
//   casc-run prog.casm [--entry=symbol] [--supervisor=true] [--max-cycles=N]
//            [--cores=1] [--threads-per-core=64] [--host-threads=N] [--trace]
//            [--trace-json=<path>] [--dump-stats] [--stats-json=<path>]
//            [--no-lint] [--race-check] [--no-fusion] [--no-threaded-dispatch]
//
// The program is linted by default before it runs (diagnostics go to stderr;
// the simulation proceeds regardless — the simulator is the ground truth).
// Pass --no-lint to skip the analysis.
//
// Conventions: the program runs on hardware thread 0 in supervisor mode by
// default. If the image defines harness thread symbols (tN_entry etc., see
// src/verify/harness.h), every declared thread is set up instead and the
// tN_main threads start at boot. `hcall 1` prints a0 in decimal, `hcall 2`
// prints it in hex, `hcall 0`/`halt` ends the thread. Exit code: 0 if the
// machine quiesced without halting, 1 on machine halt (unhandled fault),
// 3 if --race-check reported a race.
//
// --race-check attaches the vector-clock race detector (DESIGN.md §4h) as a
// concurrency observer; detected races print to stderr after the run. With
// the flag off, no observer is installed and the hot path only pays a null
// pointer test.
//
// --host-threads=N runs the machine on the host-parallel sharded engine
// (DESIGN.md §4i) with N host threads; 0 (the default) keeps the legacy
// single-threaded engine. Simulated results are a pure function of
// (program, seed, config): --stats-json output is byte-identical at every
// host-thread count. --race-check forces the legacy engine (the vector-clock
// observer is itself not thread-safe); a note goes to stderr.
// With a multi-core machine (--cores=N), harness threads land on core
// ptid / threads-per-core — `--cores=4 --threads-per-core=1` spreads t0..t3
// across four cores/shards.
//
// --no-fusion / --no-threaded-dispatch switch off the interpreter engine's
// superinstruction fusion and computed-goto dispatch (DESIGN.md §4j). Both
// are host-speed knobs: simulated output — stdout, stats, traces — is
// byte-identical in every combination (with both off, the engine is the
// legacy decode-and-switch dispatch exactly).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/analysis/lint.h"
#include "src/cpu/machine.h"
#include "src/hwt/tracer.h"
#include "src/sim/config.h"
#include "src/verify/harness.h"
#include "src/verify/race_detector.h"

using namespace casc;

namespace {

void PrintUsage(FILE* out) {
  std::fprintf(out,
               "usage: casc-run <file.casm> [--entry=symbol] [--supervisor=true]\n"
               "                [--max-cycles=N] [--cores=1] [--threads-per-core=64]\n"
               "                [--host-threads=N] [--trace] [--trace-json=<path>]\n"
               "                [--dump-stats] [--stats-json=<path>] [--no-lint]\n"
               "                [--race-check] [--no-fusion] [--no-threaded-dispatch]\n"
               "                [--help]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--help") {
    PrintUsage(stdout);
    return 0;
  }
  if (argc < 2) {
    PrintUsage(stderr);
    return 2;
  }
  const std::string path = argv[1];
  Config cfg;
  std::string err;
  if (!cfg.ParseArgs(argc - 1, argv + 1, &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  MachineConfig mc;
  mc.num_cores = static_cast<uint32_t>(cfg.GetUint("cores", 1));
  mc.hwt.threads_per_core = static_cast<uint32_t>(cfg.GetUint("threads-per-core", 64));
  mc.host_threads = static_cast<uint32_t>(cfg.GetUint("host-threads", 0));
  mc.fusion = !cfg.GetBool("no-fusion", false);
  mc.threaded_dispatch = !cfg.GetBool("no-threaded-dispatch", false);
  if (cfg.GetBool("race-check", false) && mc.host_threads != 0) {
    std::fprintf(stderr,
                 "note: --race-check forces --host-threads=0 (the race observer "
                 "is not thread-safe)\n");
    mc.host_threads = 0;
  }

  const AssembleResult assembled = Assembler::Assemble(ss.str(), /*base=*/0x1000);
  if (!assembled.ok) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), assembled.error.c_str());
    return 1;
  }
  if (!cfg.GetBool("no-lint", false)) {
    analysis::LintOptions lo;
    lo.entry_symbol = cfg.GetString("entry");
    lo.flow.entry_supervisor = cfg.GetBool("supervisor", true);
    lo.flow.tdt_capacity = mc.hwt.threads_per_core;
    const analysis::LintResult lint = analysis::Lint(assembled.program, lo);
    analysis::PrintDiagnostics(lint, std::cerr);
  }

  Machine m(mc);
  ThreadTracer tracer;
  const bool trace_text = cfg.GetBool("trace", false);
  const std::string trace_json = cfg.GetString("trace-json");
  if (trace_text || !trace_json.empty()) {
    m.threads().SetTracer(&tracer);
  }
  m.SetHcallHandler([&](Core&, HwThread& t, int64_t code) {
    if (code == 1) {
      std::printf("[hcall] a0 = %llu\n", (unsigned long long)t.ReadGpr(10));
    } else if (code == 2) {
      std::printf("[hcall] a0 = 0x%llx\n", (unsigned long long)t.ReadGpr(10));
    }
  });

  verify::RaceDetector race_detector(mc.hwt.threads_per_core);
  if (cfg.GetBool("race-check", false)) {
    m.SetConcurrencyObserver(&race_detector);
  }

  // Harness images describe their own machine setup; plain programs run on
  // thread 0.
  const std::vector<verify::ThreadSpec> specs =
      verify::ParseThreadSpecs(assembled.program, mc.hwt.threads_per_core);
  Ptid p = 0;
  if (specs.empty()) {
    p = m.Load(0, 0, assembled.program, cfg.GetBool("supervisor", true),
               cfg.GetString("entry"), /*edp=*/0);
  } else {
    m.mem().AddSupervisorOnlyRange(0, 0x1000);
    assembled.program.LoadInto(m.mem().phys());
    for (const verify::ThreadSpec& s : specs) {
      m.threads().InitThread(s.ptid, s.entry, s.supervisor, s.edp, s.tdtr, s.tdt_size);
    }
    p = specs.front().ptid;
  }
  const Tick start = m.sim().now();
  if (specs.empty()) {
    m.Start(p);
  } else {
    for (const verify::ThreadSpec& s : specs) {
      if (s.auto_start) {
        m.Start(s.ptid);
      }
    }
  }
  const uint64_t max_cycles = cfg.GetUint("max-cycles", 100'000'000);
  // Drain events up to the budget without advancing the clock past the last
  // real event (so the cycle report is meaningful). DrainBudget picks the
  // right engine: per-event on legacy machines, windowed rounds on sharded
  // ones — same observable results either way.
  const bool drained = m.DrainBudget(start + max_cycles);

  std::printf("---\n");
  std::printf("cycles     : %llu\n", (unsigned long long)(m.sim().now() - start));
  uint64_t insts = 0;
  for (uint32_t c = 0; c < m.num_cores(); c++) {
    insts += m.core(c).instructions_retired();
  }
  std::printf("instructions: %llu\n", (unsigned long long)insts);
  std::printf("state      : %s%s\n",
              m.halted() ? "HALTED: " : (drained ? "quiesced" : "cycle budget exhausted"),
              m.halted() ? m.halt_reason().c_str() : "");
  std::printf("registers  :");
  for (uint32_t r = 10; r <= 17; r++) {
    std::printf(" a%u=%llu", r - 10, (unsigned long long)m.threads().thread(p).ReadGpr(r));
  }
  std::printf("\n");
  if (trace_text) {
    std::printf("timeline (start..now):\n");
    tracer.DumpTimeline(std::cout, start, m.sim().now() + 1, 72);
  }
  if (!trace_json.empty()) {
    std::ofstream out(trace_json);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_json.c_str());
      return 2;
    }
    tracer.DumpChromeTrace(out);
    std::printf("trace      : %s (%zu events%s)\n", trace_json.c_str(), tracer.events().size(),
                tracer.dropped() > 0 ? ", TRUNCATED" : "");
  }
  if (cfg.GetBool("dump-stats", false)) {
    m.sim().stats().Dump(std::cout);
  }
  const std::string stats_json = cfg.GetString("stats-json");
  if (!stats_json.empty()) {
    std::ofstream out(stats_json);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", stats_json.c_str());
      return 2;
    }
    m.sim().stats().DumpJson(out);
  }
  if (cfg.GetBool("race-check", false)) {
    for (const verify::RaceReport& r : race_detector.reports()) {
      std::fprintf(stderr, "%s\n",
                   verify::RaceDetector::Format(r, &assembled.program).c_str());
    }
    std::printf("race-check : %s (%llu racy access pair(s))\n",
                race_detector.clean() ? "clean" : "RACES FOUND",
                (unsigned long long)race_detector.race_hits());
    if (!race_detector.clean()) {
      return 3;
    }
  }
  return m.halted() ? 1 : 0;
}
