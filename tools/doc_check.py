#!/usr/bin/env python3
"""doc_check: keep the paper-reproduction book honest.

Runs as the `docs_check` ctest. Four passes over the prose docs
(README.md, DESIGN.md, tools/README.md, docs/ARCHITECTURE.md,
docs/TUTORIAL.md):

1. Every fenced ```casm block must assemble and lint clean via casc_lint —
   a doc example that rots fails CI, same as a unit test.
2. Every `--flag` the docs mention must exist: either parsed by some tool
   (scanned from Get*/Has("name") calls and literal "--name" strings in
   tools/, bench/, and examples/ sources), printed by `casc_run --help`,
   or on the short external allowlist (ctest/cmake flags we don't own).
3. Every `build/...` path and repo-relative source path (src/, tools/,
   tests/, bench/, examples/, docs/) the docs mention must exist on disk;
   glob patterns and placeholders are skipped.
4. Every DESIGN.md section reference — a lettered `§4i`-style id anywhere,
   or a plain `DESIGN.md §N` — must name a real `## N.`/`## 4x.` heading in
   DESIGN.md. (Bare numeric `§N` without the DESIGN.md prefix is left
   alone: those cite the source paper.)

Usage:
  doc_check.py --root=<repo> --build=<builddir> --lint=<casc_lint> \
               --run=<casc_run> [--scratch=<dir>]

Exit 0 when every check passes; 1 with one line per violation otherwise.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

DOC_FILES = [
    "README.md",
    "DESIGN.md",
    os.path.join("tools", "README.md"),
    os.path.join("docs", "ARCHITECTURE.md"),
    os.path.join("docs", "TUTORIAL.md"),
]

# Directories whose sources are scanned for flags the tools actually parse.
FLAG_SOURCE_DIRS = ["tools", "bench", "examples"]

# Flags owned by external tools (ctest, cmake) or used as placeholders in
# prose; everything else mentioned in the docs must exist in our sources.
EXTERNAL_FLAGS = {
    "test-dir",            # ctest
    "output-on-failure",   # ctest
    "build",               # cmake --build
    "flag",                # prose placeholder ("every --flag ...")
}

FLAG_RE = re.compile(r"(?<![\w-])--([a-z][a-z0-9-]*)")
GETTER_RE = re.compile(r'(?:Get(?:Bool|Int|Uint|Double|String)|Has)\s*\(\s*"([a-z][a-z0-9-]*)"')
LITERAL_FLAG_RE = re.compile(r"--([a-z][a-z0-9-]*)")
PATH_RE = re.compile(r"(?<![\w/-])((?:build|src|tools|tests|bench|examples|docs)/[A-Za-z0-9_./*-]+)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")
# DESIGN.md subsection headings look like `## 4i. Title` (top-level: `## 5.`).
HEADING_RE = re.compile(r"^## (\d+[a-z]?)\.", re.MULTILINE)
# A lettered id (§4i) can only be a DESIGN.md subsection; a bare numeric §N
# is a paper citation unless explicitly prefixed with "DESIGN.md".
LETTERED_REF_RE = re.compile(r"§(\d+[a-z])\b")
PREFIXED_REF_RE = re.compile(r"DESIGN\.md §(\d+[a-z]?)\b")

errors = []


def fail(doc, line_no, msg):
    errors.append(f"{doc}:{line_no}: {msg}")


def extract_fenced_blocks(text):
    """Yields (info_string, start_line, block_lines) for every fenced block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = FENCE_RE.match(lines[i])
        if m:
            info = m.group(1)
            start = i + 1
            block = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                block.append(lines[i])
                i += 1
            yield info, start + 1, block
        i += 1


def check_casm_blocks(doc, text, lint_bin, scratch):
    for idx, (info, line_no, block) in enumerate(extract_fenced_blocks(text)):
        if info != "casm":
            continue
        path = os.path.join(scratch, f"{os.path.basename(doc)}.block{idx}.casm")
        with open(path, "w") as f:
            f.write("\n".join(block) + "\n")
        r = subprocess.run([lint_bin, path], capture_output=True, text=True)
        if r.returncode != 0:
            detail = (r.stdout + r.stderr).strip().splitlines()
            first = detail[0] if detail else "no diagnostic output"
            fail(doc, line_no, f"casm block fails casc_lint: {first}")


def known_flags(root, run_bin):
    flags = set(EXTERNAL_FLAGS)
    for d in FLAG_SOURCE_DIRS:
        base = os.path.join(root, d)
        for dirpath, _, files in os.walk(base):
            for name in files:
                if not name.endswith((".cpp", ".cc", ".h", ".sh", ".py")):
                    continue
                with open(os.path.join(dirpath, name), errors="replace") as f:
                    src = f.read()
                flags.update(GETTER_RE.findall(src))
                flags.update(LITERAL_FLAG_RE.findall(src))
    if run_bin:
        r = subprocess.run([run_bin, "--help"], capture_output=True, text=True)
        flags.update(LITERAL_FLAG_RE.findall(r.stdout + r.stderr))
    return flags


def check_flags(doc, text, flags):
    for line_no, line in enumerate(text.splitlines(), 1):
        for name in FLAG_RE.findall(line):
            if name not in flags:
                fail(doc, line_no, f"flag --{name} not found in any tool source, "
                                   "casc_run --help, or the external allowlist")


def check_paths(doc, text, root, build_dir):
    for line_no, line in enumerate(text.splitlines(), 1):
        for token in PATH_RE.findall(line):
            token = token.rstrip(".,")
            if "*" in token or token.endswith(("/", "_", "-")):
                continue  # glob, or a placeholder truncated at `<name>`
            # A doc path may name a repo file, a built artifact (tool and
            # bench binaries live under build/), or a `src/x/y` shorthand
            # for a header — accept any of those spellings.
            candidates = [os.path.join(root, token), os.path.join(root, token + ".h")]
            if token.startswith("build/"):
                candidates = [os.path.join(build_dir, token[len("build/"):])]
            else:
                candidates.append(os.path.join(build_dir, token))
            if not any(os.path.exists(c) for c in candidates):
                fail(doc, line_no, f"path {token} does not exist in the repo or build tree")


def design_headings(root):
    path = os.path.join(root, "DESIGN.md")
    if not os.path.exists(path):
        return set()
    with open(path, errors="replace") as f:
        return set(HEADING_RE.findall(f.read()))


def check_section_refs(doc, text, headings):
    for line_no, line in enumerate(text.splitlines(), 1):
        refs = set(LETTERED_REF_RE.findall(line))
        refs.update(PREFIXED_REF_RE.findall(line))
        for ref in refs:
            if ref not in headings:
                fail(doc, line_no, f"§{ref} does not match any `## {ref}.` "
                                   "heading in DESIGN.md")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", required=True)
    ap.add_argument("--build", required=True)
    ap.add_argument("--lint", required=True)
    ap.add_argument("--run", default="")
    ap.add_argument("--scratch", default="")
    args = ap.parse_args()

    scratch = args.scratch or tempfile.mkdtemp(prefix="doc_check.")
    os.makedirs(scratch, exist_ok=True)

    flags = known_flags(args.root, args.run)
    headings = design_headings(args.root)
    checked = 0
    for rel in DOC_FILES:
        doc = os.path.join(args.root, rel)
        if not os.path.exists(doc):
            fail(rel, 0, "doc file missing")
            continue
        with open(doc, errors="replace") as f:
            text = f.read()
        check_casm_blocks(rel, text, args.lint, scratch)
        check_flags(rel, text, flags)
        check_paths(rel, text, args.root, args.build)
        check_section_refs(rel, text, headings)
        checked += 1

    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"doc_check: {len(errors)} problem(s) in {checked} doc(s)", file=sys.stderr)
        return 1
    print(f"doc_check: {checked} docs ok ({len(flags)} known flags, "
          f"{len(headings)} DESIGN.md sections)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
