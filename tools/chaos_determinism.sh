#!/bin/sh
# Chaos determinism check: run every fault-injection scenario twice with the
# same seed and require byte-identical stats dumps. The chaos engine draws
# from its own seeded RNG stream (never the workload's), so identical seeds
# must replay identical campaigns — injection ticks, detection latencies,
# recovery latencies, everything. Any divergence is a nondeterminism bug in
# the engine or in a scenario's host-side event plumbing.
#
# Usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>
set -eu

bin=${1:?usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>}
scratch=${2:?usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>}
mkdir -p "$scratch"

if [ ! -x "$bin" ]; then
  echo "chaos_determinism: missing binary $bin" >&2
  exit 2
fi

# The two-seed compare runs at every engine flavor — legacy (--host-threads=0)
# and sharded with 1 and 4 host workers (DESIGN.md §4i) — and additionally
# requires the *cross-engine* bytes to match: scenario machines are one-core,
# so the sharded solo fast path must reproduce the legacy engine exactly.
fail=0
for seed in 1 7; do
  ref=""
  for ht in 0 1 4; do
    a="$scratch/chaos.seed$seed.ht$ht.run1.json"
    b="$scratch/chaos.seed$seed.ht$ht.run2.json"
    "$bin" --scenario=all --seed="$seed" --host-threads="$ht" --stats-json="$a" > /dev/null
    "$bin" --scenario=all --seed="$seed" --host-threads="$ht" --stats-json="$b" > /dev/null
    if ! cmp -s "$a" "$b"; then
      echo "chaos_determinism: seed $seed ht $ht stats dumps differ:" >&2
      diff "$a" "$b" >&2 || true
      fail=1
      continue
    fi
    if [ -z "$ref" ]; then
      ref="$a"
    elif ! cmp -s "$ref" "$a"; then
      echo "chaos_determinism: seed $seed ht $ht diverges from $ref:" >&2
      diff "$ref" "$a" >&2 || true
      fail=1
      continue
    fi
    echo "chaos_determinism: seed $seed ht $ht ok ($(wc -c < "$a") bytes, byte-identical)"
  done
done
exit "$fail"
