#!/bin/sh
# Chaos determinism check: run fault-injection scenarios twice with the same
# seed and require byte-identical stats dumps. The chaos engine draws from
# its own seeded RNG stream (never the workload's), so identical seeds must
# replay identical campaigns — injection ticks, detection latencies,
# recovery latencies, everything. Any divergence is a nondeterminism bug in
# the engine or in a scenario's host-side event plumbing.
#
# Two scenario groups, two contracts (DESIGN.md §4i/§4k):
#   single-core — two-run identity per engine PLUS cross-engine identity
#     across legacy (--host-threads=0), sharded (1 and 4 workers), and the
#     interpreter fallback engines (--no-fusion, --no-fusion
#     --no-threaded-dispatch): scenario machines are one-core, so the
#     sharded solo fast path must reproduce the legacy engine exactly, and
#     dispatch/fusion are timing-neutral.
#   cross-core — two-run identity per engine, and the sharded aggregate must
#     be independent of the worker count (ht1 == ht4). ht0 is a different
#     timing model (direct cross-core paths instead of conservative mailbox
#     hops), so it legitimately diverges from ht>=1 and is only compared
#     against itself.
#
# Usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>
set -eu

bin=${1:?usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>}
scratch=${2:?usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>}
mkdir -p "$scratch"

if [ ! -x "$bin" ]; then
  echo "chaos_determinism: missing binary $bin" >&2
  exit 2
fi

fail=0

# two_run <group> <seed> <engine-tag> <flags...>: same-seed double run with a
# byte compare; leaves run1's dump at $scratch/chaos.<group>.seed<N>.<tag>.json.
two_run() {
  group=$1; seed=$2; eng=$3; shift 3
  a="$scratch/chaos.$group.seed$seed.$eng.json"
  b="$scratch/chaos.$group.seed$seed.$eng.run2.json"
  "$bin" --scenario="$group" --seed="$seed" "$@" --stats-json="$a" > /dev/null
  "$bin" --scenario="$group" --seed="$seed" "$@" --stats-json="$b" > /dev/null
  if ! cmp -s "$a" "$b"; then
    echo "chaos_determinism: $group seed $seed engine $eng stats dumps differ:" >&2
    diff "$a" "$b" >&2 || true
    fail=1
    return 1
  fi
  echo "chaos_determinism: $group seed $seed engine $eng ok ($(wc -c < "$a") bytes, byte-identical)"
}

for seed in 1 7; do
  # --- single-core group: two-run identity AND cross-engine identity -------
  ref=""
  for eng in "ht0" "ht1" "ht4" "nofusion" "legacy-dispatch"; do
    case "$eng" in
      ht*) flags="--host-threads=${eng#ht}" ;;
      nofusion) flags="--host-threads=0 --no-fusion" ;;
      legacy-dispatch) flags="--host-threads=0 --no-fusion --no-threaded-dispatch" ;;
    esac
    # shellcheck disable=SC2086  # flags is a deliberate word list
    two_run single-core "$seed" "$eng" $flags || continue
    a="$scratch/chaos.single-core.seed$seed.$eng.json"
    if [ -z "$ref" ]; then
      ref="$a"
    elif ! cmp -s "$ref" "$a"; then
      echo "chaos_determinism: single-core seed $seed engine $eng diverges from $ref:" >&2
      diff "$ref" "$a" >&2 || true
      fail=1
    fi
  done

  # --- cross-core group: two-run identity per engine, plus ht1 == ht4 ------
  for eng in "ht0" "ht1" "ht4"; do
    two_run cross-core "$seed" "$eng" "--host-threads=${eng#ht}" || continue
  done
  h1="$scratch/chaos.cross-core.seed$seed.ht1.json"
  h4="$scratch/chaos.cross-core.seed$seed.ht4.json"
  if [ -f "$h1" ] && [ -f "$h4" ] && ! cmp -s "$h1" "$h4"; then
    echo "chaos_determinism: cross-core seed $seed sharded aggregate depends on worker count:" >&2
    diff "$h1" "$h4" >&2 || true
    fail=1
  fi
done
exit "$fail"
