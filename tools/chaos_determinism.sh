#!/bin/sh
# Chaos determinism check: run every fault-injection scenario twice with the
# same seed and require byte-identical stats dumps. The chaos engine draws
# from its own seeded RNG stream (never the workload's), so identical seeds
# must replay identical campaigns — injection ticks, detection latencies,
# recovery latencies, everything. Any divergence is a nondeterminism bug in
# the engine or in a scenario's host-side event plumbing.
#
# Usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>
set -eu

bin=${1:?usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>}
scratch=${2:?usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>}
mkdir -p "$scratch"

if [ ! -x "$bin" ]; then
  echo "chaos_determinism: missing binary $bin" >&2
  exit 2
fi

fail=0
for seed in 1 7; do
  a="$scratch/chaos.seed$seed.run1.json"
  b="$scratch/chaos.seed$seed.run2.json"
  "$bin" --scenario=all --seed="$seed" --stats-json="$a" > /dev/null
  "$bin" --scenario=all --seed="$seed" --stats-json="$b" > /dev/null
  if ! cmp -s "$a" "$b"; then
    echo "chaos_determinism: seed $seed stats dumps differ:" >&2
    diff "$a" "$b" >&2 || true
    fail=1
  else
    echo "chaos_determinism: seed $seed ok ($(wc -c < "$a") bytes, byte-identical)"
  fi
done
exit "$fail"
