#!/bin/sh
# Chaos determinism check: run every fault-injection scenario twice with the
# same seed and require byte-identical stats dumps. The chaos engine draws
# from its own seeded RNG stream (never the workload's), so identical seeds
# must replay identical campaigns — injection ticks, detection latencies,
# recovery latencies, everything. Any divergence is a nondeterminism bug in
# the engine or in a scenario's host-side event plumbing.
#
# Usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>
set -eu

bin=${1:?usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>}
scratch=${2:?usage: chaos_determinism.sh <casc_chaos-binary> <scratch-dir>}
mkdir -p "$scratch"

if [ ! -x "$bin" ]; then
  echo "chaos_determinism: missing binary $bin" >&2
  exit 2
fi

# The two-seed compare runs at every engine flavor — legacy (--host-threads=0)
# and sharded with 1 and 4 host workers (DESIGN.md §4i), plus the interpreter
# fallback engines (--no-fusion, and --no-fusion --no-threaded-dispatch;
# DESIGN.md §4j) — and additionally requires the *cross-engine* bytes to
# match: scenario machines are one-core, so the sharded solo fast path must
# reproduce the legacy engine exactly, and dispatch/fusion are timing-neutral
# so the interpreter engines must agree byte for byte too.
fail=0
for seed in 1 7; do
  ref=""
  for eng in "ht0" "ht1" "ht4" "nofusion" "legacy-dispatch"; do
    case "$eng" in
      ht*) flags="--host-threads=${eng#ht}" ;;
      nofusion) flags="--host-threads=0 --no-fusion" ;;
      legacy-dispatch) flags="--host-threads=0 --no-fusion --no-threaded-dispatch" ;;
    esac
    a="$scratch/chaos.seed$seed.$eng.run1.json"
    b="$scratch/chaos.seed$seed.$eng.run2.json"
    # shellcheck disable=SC2086  # flags is a deliberate word list
    "$bin" --scenario=all --seed="$seed" $flags --stats-json="$a" > /dev/null
    "$bin" --scenario=all --seed="$seed" $flags --stats-json="$b" > /dev/null
    if ! cmp -s "$a" "$b"; then
      echo "chaos_determinism: seed $seed engine $eng stats dumps differ:" >&2
      diff "$a" "$b" >&2 || true
      fail=1
      continue
    fi
    if [ -z "$ref" ]; then
      ref="$a"
    elif ! cmp -s "$ref" "$a"; then
      echo "chaos_determinism: seed $seed engine $eng diverges from $ref:" >&2
      diff "$ref" "$a" >&2 || true
      fail=1
      continue
    fi
    echo "chaos_determinism: seed $seed engine $eng ok ($(wc -c < "$a") bytes, byte-identical)"
  done
done
exit "$fail"
