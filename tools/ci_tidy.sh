#!/bin/sh
# clang-tidy CI tier: runs the checks configured in .clang-tidy (bugprone-*,
# concurrency-*, performance-*) over the first-party sources, using the
# compile_commands.json the build exports (CMAKE_EXPORT_COMPILE_COMMANDS is
# on by default in the root CMakeLists).
#
# clang-tidy is optional tooling: containers that only carry gcc skip this
# tier gracefully (exit 0 with a notice) instead of failing CI.
#
# Usage: ci_tidy.sh [build-dir]      (default: build)
set -eu

build=${1:-build}
src_root=$(cd "$(dirname "$0")/.." && pwd)

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "ci_tidy: clang-tidy not installed; skipping (tier is optional)"
  exit 0
fi

if [ ! -f "$build/compile_commands.json" ]; then
  cmake -B "$build" -S "$src_root"
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "ci_tidy: $build/compile_commands.json missing after configure" >&2
  exit 1
fi

# First-party translation units only: the exported database also lists GTest
# and benchmark sources we do not own.
files=$(cd "$src_root" && find src tools examples bench -name '*.cc' -o -name '*.cpp' | sort)
status=0
for f in $files; do
  clang-tidy -p "$build" "$src_root/$f" || status=1
done
if [ "$status" -eq 0 ]; then
  echo "ci_tidy: clean"
fi
exit "$status"
