#!/bin/sh
# Sanitizer CI tier: builds with ASan+UBSan and runs the full tier-1 ctest
# suite — which includes the differential-fuzz smoke batch (fuzz_smoke: a
# fixed-seed generator run across the whole config lattice with determinism
# checking), the saved regression corpus (fuzz_corpus), and the chaos_smoke
# tier (every fault-injection scenario plus the seed-determinism check).
# Memory errors in the simulator, the reference model, or the fault-recovery
# paths surface here rather than as silent state divergence.
#
# Usage: ci_sanitize.sh [build-dir]      (default: build-sanitize)
set -eu

build=${1:-build-sanitize}
src_root=$(cd "$(dirname "$0")/.." && pwd)

cmake -B "$build" -S "$src_root" \
  -DCASC_SANITIZE=address,undefined \
  -DCASC_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j"$(nproc)"

# halt_on_error makes UBSan findings fail the test run instead of printing
# and continuing; detect_leaks catches forgotten event-queue allocations.
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  sh -c "cd '$build' && ctest --output-on-failure -j\"\$(nproc)\""
echo "ci_sanitize: all tests clean under address,undefined"
