#!/bin/sh
# Sanitizer CI tier: builds with the requested sanitizers and runs the tier-1
# ctest suite — which includes the differential-fuzz smoke batch (fuzz_smoke:
# a fixed-seed generator run across the whole config lattice with determinism
# and race checking), the saved regression corpus (fuzz_corpus), the
# chaos_smoke tier (every fault-injection scenario plus the seed-determinism
# check), and the fuzz_chaos tier (chaos-differential batches across the
# host-threads lattice and per-fault-class masks, campaign-replay
# determinism, and the wedged-fixture watchdog negative; DESIGN.md §4k).
# Memory errors in the simulator, the reference model, or the
# fault-recovery paths surface here rather than as silent state divergence.
# The direct-threaded dispatch engine and the fusion pass (DESIGN.md §4j) are
# default-on, so every tier exercises the computed-goto table (when the
# compiler supports it) and the fused-continuation hot path; the fuzz
# lattice's nofusion / fused-nothreaded points cover the other engines.
#
# The `thread` tier builds with TSan and runs the tests labelled `tsan`: the
# concurrency-analyzer suite, the monitor/mwait race fixtures, the sharded
# engine's unit suite (test_shard), and bench + chaos smokes with a real
# 4-worker host pool (--host-threads=4) — including the cross-core fault
# campaigns (chaos_tsan_cross_core) — so the engine's claim/park/mailbox
# machinery itself runs under the race detector. Host-level data races in the
# simulator's own bookkeeping surface here, complementing the guest-level
# casc-race detector.
#
# Usage: ci_sanitize.sh [sanitizers] [build-dir]
#   sanitizers   comma list for -fsanitize (default: address,undefined;
#                `thread` selects the TSan tier)
#   build-dir    default: build-sanitize (build-sanitize-thread for TSan)
set -eu

san=${1:-address,undefined}
if [ "$san" = "thread" ]; then
  default_build=build-sanitize-thread
else
  default_build=build-sanitize
fi
build=${2:-$default_build}
src_root=$(cd "$(dirname "$0")/.." && pwd)

cmake -B "$build" -S "$src_root" \
  -DCASC_SANITIZE="$san" \
  -DCASC_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j"$(nproc)"

# halt_on_error makes sanitizer findings fail the test run instead of
# printing and continuing; detect_leaks catches forgotten event-queue
# allocations.
if [ "$san" = "thread" ]; then
  TSAN_OPTIONS=halt_on_error=1 \
    sh -c "cd '$build' && ctest -L tsan --output-on-failure -j\"\$(nproc)\""
else
  ASAN_OPTIONS=detect_leaks=1 \
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    sh -c "cd '$build' && ctest --output-on-failure -j\"\$(nproc)\""
fi
echo "ci_sanitize: all tests clean under $san"
