#!/usr/bin/env bash
# Release-build bench-smoke tier.
#
# The default tree builds RelWithDebInfo; host-throughput numbers (bench
# t2_simhost) and the perf-sensitive hot paths are only meaningful at full
# optimization, so CI also runs the bench-smoke ctest tier from a Release
# tree: every bench with reduced iterations, then casc_bench_check over each
# BENCH_*.json artifact.
#
#   tools/bench_smoke_release.sh            # uses ./build-rel
#   BUILD=/tmp/rel tools/bench_smoke_release.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build-rel}
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$(nproc)"
ctest --test-dir "$BUILD" -L bench-smoke -j"$(nproc)" --output-on-failure
