#!/usr/bin/env bash
# Release-build bench-smoke tier.
#
# The default tree builds RelWithDebInfo; host-throughput numbers (bench
# t2_simhost) and the perf-sensitive hot paths are only meaningful at full
# optimization, so CI also runs the bench-smoke ctest tier from a Release
# tree: every bench with reduced iterations, then casc_bench_check over each
# BENCH_*.json artifact.
#
#   tools/bench_smoke_release.sh            # uses ./build-rel
#   BUILD=/tmp/rel tools/bench_smoke_release.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build-rel}
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$(nproc)"
ctest --test-dir "$BUILD" -L bench-smoke -j"$(nproc)" --output-on-failure

# Interpreter throughput gate (DESIGN.md §4j): a full (non-smoke) t2_simhost
# run's "interp" row must clear an absolute Minsts/s floor, so a regression in
# the direct-threaded dispatch loop or the fusion pass fails this tier even
# when every schema check passes. The default floor sits between the PR 7
# engine (~41 Minsts/s best on the reference CI host) and the PR 8 engine's
# observed worst round (~51), leaving margin for this host's ±10% drift.
# Override for slower CI hosts with CASC_BENCH_INTERP_FLOOR (Minsts/s); set
# it to 0 to disable the gate.
FLOOR=${CASC_BENCH_INTERP_FLOOR:-48}
"$BUILD"/bench/bench_t2_simhost --json="$BUILD"/bench/BENCH_t2_simhost_full.json
"$BUILD"/tools/casc_bench_check --interp-floor "$FLOOR" \
  "$BUILD"/bench/BENCH_t2_simhost_full.json
