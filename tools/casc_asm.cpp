// casc-asm: assembler / disassembler for the CASC ISA.
//
//   casc-asm assemble prog.casm [--base=0x1000] [--out=prog.bin] [--list] [--lint]
//   casc-asm disasm prog.bin [--base=0x1000]
//
// `--list` prints an address / encoding / disassembly listing with symbols.
// `--lint` runs the static analyzer over the assembled image and fails the
// assembly (exit 1) if it reports any errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "src/analysis/lint.h"
#include "src/isa/assembler.h"
#include "src/isa/isa.h"
#include "src/sim/config.h"

using namespace casc;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: casc-asm assemble <file.casm> [--base=0x1000] [--out=file.bin] [--list] [--lint]\n"
               "       casc-asm disasm <file.bin> [--base=0x1000]\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

void PrintListing(const Program& program) {
  // Invert the symbol table for annotation.
  std::multimap<Addr, std::string> by_addr;
  for (const auto& [name, addr] : program.symbols) {
    by_addr.insert({addr, name});
  }
  for (size_t off = 0; off + 4 <= program.bytes.size(); off += 4) {
    const Addr addr = program.base + off;
    auto range = by_addr.equal_range(addr);
    for (auto it = range.first; it != range.second; ++it) {
      std::printf("%s:\n", it->second.c_str());
    }
    uint32_t word = 0;
    std::memcpy(&word, &program.bytes[off], 4);
    std::printf("  %08llx:  %08x  %s\n", (unsigned long long)addr, word,
                Disassemble(word).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string mode = argv[1];
  const std::string path = argv[2];
  Config cfg;
  std::string err;
  if (!cfg.ParseArgs(argc - 2, argv + 2, &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return Usage();
  }
  const Addr base = cfg.GetUint("base", 0x1000);

  if (mode == "assemble") {
    std::string source;
    if (!ReadFile(path, &source)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    const AssembleResult result = Assembler::Assemble(source, base);
    if (!result.ok) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), result.error.c_str());
      return 1;
    }
    std::printf("assembled %zu bytes at 0x%llx, %zu symbols\n", result.program.bytes.size(),
                (unsigned long long)base, result.program.symbols.size());
    if (cfg.GetBool("list", false)) {
      PrintListing(result.program);
    }
    if (cfg.GetBool("lint", false)) {
      const analysis::LintResult lint = analysis::Lint(result.program);
      analysis::PrintDiagnostics(lint, std::cerr);
      if (!lint.ok()) {
        return 1;
      }
    }
    const std::string out = cfg.GetString("out");
    if (!out.empty()) {
      std::ofstream of(out, std::ios::binary);
      of.write(reinterpret_cast<const char*>(result.program.bytes.data()),
               static_cast<std::streamsize>(result.program.bytes.size()));
      std::printf("wrote %s\n", out.c_str());
    }
    return 0;
  }

  if (mode == "disasm") {
    std::string bytes;
    if (!ReadFile(path, &bytes)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    for (size_t off = 0; off + 4 <= bytes.size(); off += 4) {
      uint32_t word = 0;
      std::memcpy(&word, bytes.data() + off, 4);
      std::printf("%08llx:  %08x  %s\n", (unsigned long long)(base + off), word,
                  Disassemble(word).c_str());
    }
    return 0;
  }
  return Usage();
}
