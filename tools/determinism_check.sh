#!/bin/sh
# Determinism check: run each example twice with --stats-json and require
# byte-identical stats dumps. The simulator is a single-threaded discrete-event
# machine with a seeded RNG, so any divergence between identical runs is a
# nondeterminism bug (unseeded randomness, iteration over pointer-keyed maps,
# uninitialized reads) — the kind that silently breaks differential fuzzing.
#
# Usage: determinism_check.sh <examples-dir> <scratch-dir>
set -eu

bindir=${1:?usage: determinism_check.sh <examples-dir> <scratch-dir>}
scratch=${2:?usage: determinism_check.sh <examples-dir> <scratch-dir>}
mkdir -p "$scratch"

fail=0
for name in quickstart echo_server; do
  bin="$bindir/$name"
  if [ ! -x "$bin" ]; then
    echo "determinism_check: missing binary $bin" >&2
    exit 2
  fi
  a="$scratch/$name.run1.json"
  b="$scratch/$name.run2.json"
  "$bin" --stats-json="$a" > /dev/null
  "$bin" --stats-json="$b" > /dev/null
  if ! cmp -s "$a" "$b"; then
    echo "determinism_check: $name stats dumps differ:" >&2
    diff "$a" "$b" >&2 || true
    fail=1
  else
    echo "determinism_check: $name ok ($(wc -c < "$a") bytes, byte-identical)"
  fi
done
exit "$fail"
