#!/bin/sh
# Determinism check: run each example twice with --stats-json and require
# byte-identical stats dumps. The simulator is a single-threaded discrete-event
# machine with a seeded RNG, so any divergence between identical runs is a
# nondeterminism bug (unseeded randomness, iteration over pointer-keyed maps,
# uninitialized reads) — the kind that silently breaks differential fuzzing.
#
# With a casc_run binary and a program as extra arguments, the check also
# covers the host-parallel sharded engine (DESIGN.md §4i): the program runs
# on two cores at --host-threads 1, 2, and 4, and every stats dump — and
# stdout — must be byte-identical. Host-thread count sizes the worker pool;
# it is not part of the simulated configuration, so any divergence is a
# cross-shard ordering bug (a mailbox drained in host order, a window
# boundary that moved with the thread count).
#
# Usage: determinism_check.sh <examples-dir> <scratch-dir> [<casc_run> <prog.casm>]
set -eu

bindir=${1:?usage: determinism_check.sh <examples-dir> <scratch-dir>}
scratch=${2:?usage: determinism_check.sh <examples-dir> <scratch-dir>}
casc_run=${3:-}
prog=${4:-}
mkdir -p "$scratch"

fail=0
for name in quickstart echo_server; do
  bin="$bindir/$name"
  if [ ! -x "$bin" ]; then
    echo "determinism_check: missing binary $bin" >&2
    exit 2
  fi
  a="$scratch/$name.run1.json"
  b="$scratch/$name.run2.json"
  "$bin" --stats-json="$a" > /dev/null
  "$bin" --stats-json="$b" > /dev/null
  if ! cmp -s "$a" "$b"; then
    echo "determinism_check: $name stats dumps differ:" >&2
    diff "$a" "$b" >&2 || true
    fail=1
  else
    echo "determinism_check: $name ok ($(wc -c < "$a") bytes, byte-identical)"
  fi
done

if [ -n "$casc_run" ]; then
  if [ ! -x "$casc_run" ] || [ ! -f "$prog" ]; then
    echo "determinism_check: missing casc_run ($casc_run) or program ($prog)" >&2
    exit 2
  fi
  base_json="$scratch/hostthreads.ht1.json"
  base_out="$scratch/hostthreads.ht1.out"
  "$casc_run" "$prog" --cores=2 --threads-per-core=1 --host-threads=1 \
    --stats-json="$base_json" > "$base_out"
  for ht in 2 4; do
    j="$scratch/hostthreads.ht$ht.json"
    o="$scratch/hostthreads.ht$ht.out"
    "$casc_run" "$prog" --cores=2 --threads-per-core=1 --host-threads="$ht" \
      --stats-json="$j" > "$o"
    if ! cmp -s "$base_json" "$j" || ! cmp -s "$base_out" "$o"; then
      echo "determinism_check: --host-threads=$ht diverges from --host-threads=1:" >&2
      diff "$base_json" "$j" >&2 || true
      diff "$base_out" "$o" >&2 || true
      fail=1
    else
      echo "determinism_check: host-threads $ht ok (stats + stdout byte-identical)"
    fi
  done
fi
exit "$fail"
