// casc-fuzz: differential fuzzer for the CASC simulator.
//
//   casc-fuzz [--seed=N] [--iters=N] [--points=0,3,6] [--max-events=N]
//             [--out=<dir>] [--determinism] [--race-check] [--host-threads=N]
//             [--cores=N] [--chaos] [--chaos-seed=N] [--fault-mask=N]
//             [--watchdog-ticks=N] [--list-points]
//   casc-fuzz --repro=<file.casm> [--points=...]
//   casc-fuzz --corpus=<dir> [--points=...]
//
// --cores=2 splits each generated program's threads across two simulated
// cores, so starts, monitor handshakes, and rpull/rpush tier moves cross the
// interconnect (and the sharded engine's mailboxes under --host-threads).
//
// --chaos arms a seeded cross-core fault campaign (chaos_plan.h) over every
// lattice point: --fault-mask picks the classes (bit 0 fabric-link-fault,
// bit 1 migration-crash, bit 2 remote-start-race; default 7 = all),
// --chaos-seed derives each class's cadence and budget, and
// --watchdog-ticks bounds each run (default 2000000). Points where a fault
// fired are held to the liveness oracle — quiesce or halt with a structured
// reason, never keep scheduling events past the watchdog ("wedge") — and
// failures shrink the program and the fault schedule jointly. Chaos repros
// carry the plan in `# chaos-*` header comments; --repro re-arms it
// automatically. --race-check is disabled under --chaos (injected faults
// are deliberate races).
//
// --race-check attaches the vector-clock race detector to every simulator
// run (failure category "race"). Generated programs are race-free by
// construction, so the smoke batch runs with it on in CI; the saved corpus
// does not (it keeps deliberately racy repros).
//
// Each iteration generates a constrained random program and runs it across
// the configuration lattice (see src/verify/diff_runner.h), comparing final
// architectural state, exception streams, and internal invariants against
// the untimed reference model. On a failure, the program is auto-shrunk to a
// minimal repro and written as a `.casm` file (to --out, default cwd).
//
// --host-threads=N runs every simulator build on the host-parallel sharded
// engine (DESIGN.md §4i; 0 = legacy, the default) — the differential
// comparison against the untimed reference then doubles as a determinism
// check for the sharded engine. Ignored (forced to 0, with a note) when
// --race-check is on: the race observer is not thread-safe.
//
// --repro re-runs one saved case and reports pass/fail; --corpus runs every
// `.casm` file in a directory (regression mode; no shrinking). Exit code:
// 0 clean, 1 failure found, 2 usage error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cpu/machine.h"
#include "src/sim/config.h"
#include "src/sim/rng.h"
#include "src/verify/chaos_plan.h"
#include "src/verify/diff_runner.h"
#include "src/verify/prog_gen.h"
#include "src/verify/shrink.h"

using namespace casc;
using namespace casc::verify;

namespace {

std::vector<size_t> ParsePoints(const std::string& spec) {
  std::vector<size_t> out;
  std::istringstream in(spec);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (!tok.empty()) {
      out.push_back(static_cast<size_t>(std::stoul(tok)));
    }
  }
  return out;
}

void PrintFailure(const char* what, const DiffFailure& f) {
  std::fprintf(stderr, "%s: FAIL [%s/%s]\n  %s\n", what,
               f.config.empty() ? "-" : f.config.c_str(), f.category.c_str(), f.detail.c_str());
}

// Shrink predicate: the candidate must assemble and fail on the same lattice
// point with the same category (invariant checks stay on so invariant
// regressions shrink too; determinism is off — it would double the cost).
FailurePredicate MatchingFailure(const DiffFailure& original, const DiffOptions& opts) {
  return [original, opts](const std::string& candidate) {
    DiffFailure f = RunDifferentialSource(candidate, opts);
    return f.failed && f.config == original.config && f.category == original.category;
  };
}

int RunOneSource(const std::string& source, const std::string& label, const DiffOptions& opts) {
  DiffFailure f = RunDifferentialSource(source, opts);
  if (!f.failed) {
    std::printf("%s: ok\n", label.c_str());
    return 0;
  }
  PrintFailure(label.c_str(), f);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  std::string err;
  if (!cfg.ParseArgs(argc, argv, &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }

  if (cfg.GetBool("list-points", false)) {
    const auto& lattice = DefaultLattice();
    for (size_t i = 0; i < lattice.size(); i++) {
      std::printf("%zu: %s\n", i, lattice[i].name.c_str());
    }
    return 0;
  }

  DiffOptions opts;
  opts.max_events = cfg.GetUint("max-events", opts.max_events);
  opts.points = ParsePoints(cfg.GetString("points"));
  opts.check_determinism = cfg.GetBool("determinism", false);
  opts.race_check = cfg.GetBool("race-check", false);
  opts.num_cores = static_cast<uint32_t>(cfg.GetUint("cores", 1));
  if (opts.num_cores != 1 && opts.num_cores != 2) {
    std::fprintf(stderr, "--cores must be 1 or 2\n");
    return 2;
  }
  if (cfg.GetBool("chaos", false)) {
    const uint32_t mask = static_cast<uint32_t>(cfg.GetUint("fault-mask", kChaosMaskAll));
    if (mask == 0 || mask > kChaosMaskAll) {
      std::fprintf(stderr, "--fault-mask must be 1..%u\n", kChaosMaskAll);
      return 2;
    }
    opts.chaos = MakeChaosPlan(cfg.GetUint("chaos-seed", 1), mask,
                               cfg.GetUint("watchdog-ticks", 2'000'000));
    if (opts.race_check) {
      std::fprintf(stderr,
                   "warning: --chaos disables --race-check (injected faults are deliberate "
                   "races)\n");
      opts.race_check = false;
    }
  }
  uint32_t host_threads = static_cast<uint32_t>(cfg.GetUint("host-threads", 0));
  if (opts.race_check && host_threads != 0) {
    std::fprintf(stderr,
                 "warning: --race-check forces --host-threads=0 (the race observer "
                 "is not thread-safe)\n");
    host_threads = 0;
  }
  // Lattice machines leave MachineConfig::host_threads at the "process
  // default" sentinel, so this threads the flag through every build.
  SetDefaultHostThreads(host_threads);

  const std::string repro = cfg.GetString("repro");
  if (!repro.empty()) {
    std::ifstream in(repro);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", repro.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    // Chaos repros are self-contained: re-arm the plan recorded in the
    // header (explicit --chaos flags, when given, win).
    if (!opts.chaos.enabled && ParseChaosPlanHeader(ss.str(), &opts.chaos)) {
      std::fprintf(stderr, "replaying chaos plan from header: %s\n",
                   FormatChaosPlan(opts.chaos).c_str());
      opts.race_check = false;
    }
    return RunOneSource(ss.str(), repro, opts);
  }

  const std::string corpus = cfg.GetString("corpus");
  if (!corpus.empty()) {
    int rc = 0;
    size_t n = 0;
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
      if (entry.path().extension() == ".casm") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
      std::ifstream in(path);
      std::ostringstream ss;
      ss << in.rdbuf();
      rc |= RunOneSource(ss.str(), path.string(), opts);
      n++;
    }
    if (n == 0) {
      std::fprintf(stderr, "no .casm files in %s\n", corpus.c_str());
      return 2;
    }
    return rc;
  }

  const uint64_t seed = cfg.GetUint("seed", 1);
  const uint64_t iters = cfg.GetUint("iters", 100);
  const std::string out_dir = cfg.GetString("out", ".");

  Rng seeder(seed);
  uint64_t chaos_fired = 0;
  for (uint64_t i = 0; i < iters; i++) {
    const uint64_t case_seed = seeder.Next();
    GenOptions gen;
    gen.seed = case_seed;
    gen.num_cores = opts.num_cores;
    const std::string source = GenerateProgram(gen);
    DiffFailure f = RunDifferentialSource(source, opts);
    if (!f.failed) {
      chaos_fired += f.chaos_injected;
      continue;
    }
    const std::string label = "iter " + std::to_string(i) + " (seed " +
                              std::to_string(case_seed) + ")";
    PrintFailure(label.c_str(), f);
    std::fprintf(stderr, "shrinking (%zu instructions)...\n", CountInstructions(source));
    DiffOptions shrink_opts = opts;
    shrink_opts.check_determinism = false;
    std::string shrunk;
    if (opts.chaos.enabled) {
      // Joint minimization: the fault schedule shrinks with the program, so
      // the repro names the fewest injections that still wedge/diverge.
      PlanShrinkResult r = ShrinkWithPlan(
          source, opts.chaos, [&](const std::string& s, const ChaosPlan& plan) {
            DiffOptions o = shrink_opts;
            o.chaos = plan;
            DiffFailure cf = RunDifferentialSource(s, o);
            return cf.failed && cf.config == f.config && cf.category == f.category;
          });
      shrunk = r.source;
      shrink_opts.chaos = r.plan;
    } else {
      shrunk = Shrink(source, MatchingFailure(f, shrink_opts));
    }
    // The shrunk program fails in the same config+category but its first
    // reported difference may be a simpler one — record its own detail.
    const DiffFailure sf = RunDifferentialSource(shrunk, shrink_opts);
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string path = out_dir + "/repro_" + std::to_string(case_seed) + ".casm";
    std::ofstream of(path);
    if (!of) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    of << "# casc-fuzz repro: seed " << case_seed << ", config " << f.config << ", category "
       << f.category << "\n# original: " << f.detail << "\n# shrunk:   "
       << (sf.failed ? sf.detail : "(no longer fails?)") << "\n";
    if (shrink_opts.chaos.enabled) {
      of << FormatChaosPlanHeader(shrink_opts.chaos);
    }
    of << shrunk;
    of.close();
    std::fprintf(stderr, "minimal repro (%zu instructions): %s\n", CountInstructions(shrunk),
                 path.c_str());
    return 1;
  }
  if (opts.chaos.enabled) {
    std::printf("casc-fuzz: %llu iterations clean (seed %llu, %llu fault(s) injected)\n",
                static_cast<unsigned long long>(iters), static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(chaos_fired));
  } else {
    std::printf("casc-fuzz: %llu iterations clean (seed %llu)\n",
                static_cast<unsigned long long>(iters), static_cast<unsigned long long>(seed));
  }
  return 0;
}
