// casc-fuzz: differential fuzzer for the CASC simulator.
//
//   casc-fuzz [--seed=N] [--iters=N] [--points=0,3,6] [--max-events=N]
//             [--out=<dir>] [--determinism] [--race-check] [--host-threads=N]
//             [--list-points]
//   casc-fuzz --repro=<file.casm> [--points=...]
//   casc-fuzz --corpus=<dir> [--points=...]
//
// --race-check attaches the vector-clock race detector to every simulator
// run (failure category "race"). Generated programs are race-free by
// construction, so the smoke batch runs with it on in CI; the saved corpus
// does not (it keeps deliberately racy repros).
//
// Each iteration generates a constrained random program and runs it across
// the configuration lattice (see src/verify/diff_runner.h), comparing final
// architectural state, exception streams, and internal invariants against
// the untimed reference model. On a failure, the program is auto-shrunk to a
// minimal repro and written as a `.casm` file (to --out, default cwd).
//
// --host-threads=N runs every simulator build on the host-parallel sharded
// engine (DESIGN.md §4i; 0 = legacy, the default) — the differential
// comparison against the untimed reference then doubles as a determinism
// check for the sharded engine. Ignored (forced to 0, with a note) when
// --race-check is on: the race observer is not thread-safe.
//
// --repro re-runs one saved case and reports pass/fail; --corpus runs every
// `.casm` file in a directory (regression mode; no shrinking). Exit code:
// 0 clean, 1 failure found, 2 usage error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cpu/machine.h"
#include "src/sim/config.h"
#include "src/sim/rng.h"
#include "src/verify/diff_runner.h"
#include "src/verify/prog_gen.h"
#include "src/verify/shrink.h"

using namespace casc;
using namespace casc::verify;

namespace {

std::vector<size_t> ParsePoints(const std::string& spec) {
  std::vector<size_t> out;
  std::istringstream in(spec);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (!tok.empty()) {
      out.push_back(static_cast<size_t>(std::stoul(tok)));
    }
  }
  return out;
}

void PrintFailure(const char* what, const DiffFailure& f) {
  std::fprintf(stderr, "%s: FAIL [%s/%s]\n  %s\n", what,
               f.config.empty() ? "-" : f.config.c_str(), f.category.c_str(), f.detail.c_str());
}

// Shrink predicate: the candidate must assemble and fail on the same lattice
// point with the same category (invariant checks stay on so invariant
// regressions shrink too; determinism is off — it would double the cost).
FailurePredicate MatchingFailure(const DiffFailure& original, const DiffOptions& opts) {
  return [original, opts](const std::string& candidate) {
    DiffFailure f = RunDifferentialSource(candidate, opts);
    return f.failed && f.config == original.config && f.category == original.category;
  };
}

int RunOneSource(const std::string& source, const std::string& label, const DiffOptions& opts) {
  DiffFailure f = RunDifferentialSource(source, opts);
  if (!f.failed) {
    std::printf("%s: ok\n", label.c_str());
    return 0;
  }
  PrintFailure(label.c_str(), f);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  std::string err;
  if (!cfg.ParseArgs(argc, argv, &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }

  if (cfg.GetBool("list-points", false)) {
    const auto& lattice = DefaultLattice();
    for (size_t i = 0; i < lattice.size(); i++) {
      std::printf("%zu: %s\n", i, lattice[i].name.c_str());
    }
    return 0;
  }

  DiffOptions opts;
  opts.max_events = cfg.GetUint("max-events", opts.max_events);
  opts.points = ParsePoints(cfg.GetString("points"));
  opts.check_determinism = cfg.GetBool("determinism", false);
  opts.race_check = cfg.GetBool("race-check", false);
  uint32_t host_threads = static_cast<uint32_t>(cfg.GetUint("host-threads", 0));
  if (opts.race_check && host_threads != 0) {
    std::fprintf(stderr,
                 "note: --race-check forces --host-threads=0 (the race observer "
                 "is not thread-safe)\n");
    host_threads = 0;
  }
  // Lattice machines leave MachineConfig::host_threads at the "process
  // default" sentinel, so this threads the flag through every build.
  SetDefaultHostThreads(host_threads);

  const std::string repro = cfg.GetString("repro");
  if (!repro.empty()) {
    std::ifstream in(repro);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", repro.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return RunOneSource(ss.str(), repro, opts);
  }

  const std::string corpus = cfg.GetString("corpus");
  if (!corpus.empty()) {
    int rc = 0;
    size_t n = 0;
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
      if (entry.path().extension() == ".casm") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
      std::ifstream in(path);
      std::ostringstream ss;
      ss << in.rdbuf();
      rc |= RunOneSource(ss.str(), path.string(), opts);
      n++;
    }
    if (n == 0) {
      std::fprintf(stderr, "no .casm files in %s\n", corpus.c_str());
      return 2;
    }
    return rc;
  }

  const uint64_t seed = cfg.GetUint("seed", 1);
  const uint64_t iters = cfg.GetUint("iters", 100);
  const std::string out_dir = cfg.GetString("out", ".");

  Rng seeder(seed);
  for (uint64_t i = 0; i < iters; i++) {
    const uint64_t case_seed = seeder.Next();
    const std::string source = GenerateProgram(case_seed);
    DiffFailure f = RunDifferentialSource(source, opts);
    if (!f.failed) {
      continue;
    }
    const std::string label = "iter " + std::to_string(i) + " (seed " +
                              std::to_string(case_seed) + ")";
    PrintFailure(label.c_str(), f);
    std::fprintf(stderr, "shrinking (%zu instructions)...\n", CountInstructions(source));
    DiffOptions shrink_opts = opts;
    shrink_opts.check_determinism = false;
    const std::string shrunk = Shrink(source, MatchingFailure(f, shrink_opts));
    // The shrunk program fails in the same config+category but its first
    // reported difference may be a simpler one — record its own detail.
    const DiffFailure sf = RunDifferentialSource(shrunk, shrink_opts);
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string path = out_dir + "/repro_" + std::to_string(case_seed) + ".casm";
    std::ofstream of(path);
    if (!of) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    of << "# casc-fuzz repro: seed " << case_seed << ", config " << f.config << ", category "
       << f.category << "\n# original: " << f.detail << "\n# shrunk:   "
       << (sf.failed ? sf.detail : "(no longer fails?)") << "\n" << shrunk;
    of.close();
    std::fprintf(stderr, "minimal repro (%zu instructions): %s\n", CountInstructions(shrunk),
                 path.c_str());
    return 1;
  }
  std::printf("casc-fuzz: %llu iterations clean (seed %llu)\n",
              static_cast<unsigned long long>(iters), static_cast<unsigned long long>(seed));
  return 0;
}
