#!/bin/sh
# Tier-1 line coverage: configures a gcov-instrumented build (CASC_COVERAGE),
# runs the full ctest suite, and aggregates line coverage over src/*.cc with
# plain gcov (no gcovr/lcov dependency). Headers are excluded — they are
# counted once per including TU and would double-count.
#
# Usage: coverage.sh [build-dir]      (default: build-coverage)
# Output: per-file table + total on stdout, repeated in <build-dir>/coverage.txt
set -eu

build=${1:-build-coverage}
src_root=$(cd "$(dirname "$0")/.." && pwd)

cmake -B "$build" -S "$src_root" -DCASC_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build "$build" -j"$(nproc)"
(cd "$build" && ctest --output-on-failure -j"$(nproc)")

# Each object dir holds the .gcno/.gcda pair for its TU; `gcov -n` prints the
# "File/Lines executed" summary without writing .gcov files.
report="$build/coverage.txt"
find "$build" -name '*.gcda' | while read -r gcda; do
  gcov -n -o "$(dirname "$gcda")" "$gcda" 2>/dev/null
done | awk -v root="$src_root/" '
  /^File / {
    f = $2
    gsub(/\x27/, "", f)
    sub(root, "", f)
  }
  /^Lines executed:/ {
    split($0, a, /[:% ]+/)   # Lines executed:PCT% of N
    pct = a[3]; n = a[5]
    if (f ~ /^src\/.*\.cc$/ && !(f in seen)) {
      seen[f] = 1
      printf "%7.2f%% %6d  %s\n", pct, n, f
      covered += pct * n / 100.0
      total += n
    }
  }
  END {
    if (total > 0) {
      printf "%7.2f%% %6d  TOTAL (src/*.cc, tier-1 suite)\n", 100.0 * covered / total, total
    } else {
      print "coverage.sh: no src/*.cc coverage data found" > "/dev/stderr"
      exit 1
    }
  }
' | tee "$report"
echo "coverage report written to $report"
