// Device tests: NIC RX/TX rings with DMA and tail-counter notification,
// block device SQ/CQ, APIC timer counter writes, MSI-X translation, and the
// fabric; plus end-to-end "device wakes hardware thread" integration.
#include <gtest/gtest.h>

#include "src/cpu/machine.h"
#include "src/dev/apic_timer.h"
#include "src/dev/block_dev.h"
#include "src/dev/fabric.h"
#include "src/dev/msix.h"
#include "src/dev/nic.h"

namespace casc {
namespace {

constexpr Addr kRxRing = 0x100000;
constexpr Addr kRxBufs = 0x110000;
constexpr Addr kRxTail = 0x120000;
constexpr Addr kTxRing = 0x130000;
constexpr Addr kTxBufs = 0x140000;
constexpr Addr kTxHead = 0x150000;

class NicTest : public ::testing::Test {
 protected:
  NicTest() : sim_(), mem_(sim_, MemConfig{}, 1), nic_(sim_, mem_, NicConfig{}, &irqs_) {
    // Post 8 RX buffers.
    for (uint64_t i = 0; i < 8; i++) {
      NicDescriptor d;
      d.buf = kRxBufs + i * 2048;
      WriteDesc(kRxRing + i * NicDescriptor::kBytes, d);
    }
    Mmio(kNicRxBase, kRxRing);
    Mmio(kNicRxSize, 8);
    Mmio(kNicRxTailAddr, kRxTail);
    Mmio(kNicTxBase, kTxRing);
    Mmio(kNicTxSize, 8);
    Mmio(kNicTxHeadAddr, kTxHead);
  }

  void Mmio(Addr reg, uint64_t value) {
    mem_.Write(0, nic_.config().mmio_base + reg, 8, value);
  }
  void WriteDesc(Addr addr, const NicDescriptor& d) {
    uint8_t raw[16];
    memcpy(raw, &d.buf, 8);
    memcpy(raw + 8, &d.len, 4);
    memcpy(raw + 12, &d.flags, 4);
    mem_.phys().Write(addr, raw, 16);
  }

  Simulation sim_;
  MemorySystem mem_;
  IrqDispatcher irqs_;
  Nic nic_;
};

TEST_F(NicTest, RxDmaWritesBufferDescriptorAndTail) {
  nic_.InjectFrame({'h', 'e', 'l', 'l', 'o'});
  EXPECT_EQ(mem_.phys().Read64(kRxTail), 0u);  // not yet delivered
  sim_.queue().RunAll();
  EXPECT_EQ(mem_.phys().Read64(kRxTail), 1u);
  EXPECT_EQ(mem_.phys().Read8(kRxBufs), 'h');
  EXPECT_EQ(mem_.phys().Read8(kRxBufs + 4), 'o');
  const uint32_t flags = mem_.phys().Read32(kRxRing + 12);
  EXPECT_TRUE(flags & NicDescriptor::kFlagDone);
  EXPECT_EQ(mem_.phys().Read32(kRxRing + 8), 5u);
  EXPECT_EQ(nic_.rx_frames(), 1u);
}

TEST_F(NicTest, RxDeliveryDelayedByDmaLatency) {
  nic_.InjectFrame({1});
  const Tick start = sim_.now();
  sim_.queue().RunAll();
  EXPECT_EQ(sim_.now() - start, nic_.config().rx_dma_latency);
}

TEST_F(NicTest, RxRingFullDropsAndResumes) {
  for (int i = 0; i < 12; i++) {
    nic_.InjectFrame({static_cast<uint8_t>(i)});
  }
  sim_.queue().RunAll();
  EXPECT_EQ(nic_.rx_frames(), 8u);
  EXPECT_EQ(nic_.rx_dropped(), 4u);
  // Software consumes 4 and reposts; new frames flow again.
  Mmio(kNicRxHead, 4);
  nic_.InjectFrame({99});
  sim_.queue().RunAll();
  EXPECT_EQ(nic_.rx_frames(), 9u);
}

TEST_F(NicTest, RxIrqRaisedWhenEnabled) {
  Mmio(kNicIrqEnable, 1);
  nic_.InjectFrame({1});
  sim_.queue().RunAll();
  ASSERT_EQ(irqs_.raised().size(), 1u);
  EXPECT_EQ(irqs_.raised()[0], nic_.config().irq_vector);
  Mmio(kNicIrqEnable, 0);
  nic_.InjectFrame({2});
  sim_.queue().RunAll();
  EXPECT_EQ(irqs_.raised().size(), 1u);  // no further IRQs
}

TEST_F(NicTest, TxTransmitsAndBumpsHead) {
  const char payload[] = "ping";
  mem_.phys().Write(kTxBufs, payload, 4);
  NicDescriptor d;
  d.buf = kTxBufs;
  d.len = 4;
  WriteDesc(kTxRing, d);
  std::vector<std::vector<uint8_t>> sent;
  nic_.SetTxHandler([&](const std::vector<uint8_t>& f) { sent.push_back(f); });
  Mmio(kNicTxDoorbell, 1);
  sim_.queue().RunAll();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0], (std::vector<uint8_t>{'p', 'i', 'n', 'g'}));
  EXPECT_EQ(mem_.phys().Read64(kTxHead), 1u);
}

TEST(ApicTimerTest, PeriodicCounterWrites) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  ApicTimerConfig cfg;
  cfg.period = 1000;
  cfg.counter_addr = 0x7000;
  ApicTimer timer(sim, mem, cfg);
  timer.StartTimer();
  sim.queue().RunUntil(3500);
  EXPECT_EQ(timer.fires(), 3u);
  EXPECT_EQ(mem.phys().Read64(0x7000), 3u);
  timer.StopTimer();
  sim.queue().RunUntil(10000);
  EXPECT_EQ(timer.fires(), 3u);
}

TEST(ApicTimerTest, OneShotFiresOnce) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  IrqDispatcher irqs;
  ApicTimerConfig cfg;
  cfg.period = 500;
  cfg.one_shot = true;
  cfg.raise_irq = true;
  ApicTimer timer(sim, mem, cfg, &irqs);
  timer.StartTimer();
  sim.queue().RunUntil(5000);
  EXPECT_EQ(timer.fires(), 1u);
  EXPECT_EQ(irqs.raised().size(), 1u);
}

TEST(MsixTest, TranslatesIrqToMemoryWrite) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  MsixBridge bridge(mem);
  bridge.RegisterVector(5, 0x6000);
  bridge.RaiseIrq(5);
  bridge.RaiseIrq(5);
  EXPECT_EQ(mem.phys().Read64(0x6000), 2u);
  bridge.RaiseIrq(6);  // unregistered
  EXPECT_EQ(bridge.dropped(), 1u);
}

TEST(BlockDeviceTest, WriteThenReadRoundTrip) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  BlockDevice dev(sim, mem, BlockConfig{});
  const Addr kSq = 0x200000;
  const Addr kCq = 0x201000;
  const Addr kCqTail = 0x202000;
  const Addr kBuf = 0x210000;
  auto mmio = [&](Addr reg, uint64_t v) { mem.Write(0, BlockConfig{}.mmio_base + reg, 8, v); };
  mmio(kBlkSqBase, kSq);
  mmio(kBlkSqSize, 16);
  mmio(kBlkCqBase, kCq);
  mmio(kBlkCqTailAddr, kCqTail);

  // Write command: 512 bytes from kBuf to LBA 4.
  mem.phys().Write64(kBuf, 0xfeedfacecafebeefull);
  uint8_t cmd[BlockCommand::kBytes] = {};
  cmd[0] = BlockCommand::kOpWrite;
  uint64_t lba = 4;
  uint32_t len = 512;
  Addr buf = kBuf;
  memcpy(cmd + 8, &lba, 8);
  memcpy(cmd + 16, &len, 4);
  memcpy(cmd + 24, &buf, 8);
  mem.phys().Write(kSq, cmd, sizeof(cmd));
  mmio(kBlkSqDoorbell, 1);
  sim.queue().RunAll();
  EXPECT_EQ(dev.completed(), 1u);
  EXPECT_EQ(mem.phys().Read64(kCqTail), 1u);
  EXPECT_EQ(dev.storage().Read64(4 * 512), 0xfeedfacecafebeefull);

  // Read it back to a different buffer.
  cmd[0] = BlockCommand::kOpRead;
  buf = kBuf + 0x1000;
  memcpy(cmd + 24, &buf, 8);
  mem.phys().Write(kSq + BlockCommand::kBytes, cmd, sizeof(cmd));
  const Tick before = sim.now();
  mmio(kBlkSqDoorbell, 2);
  sim.queue().RunAll();
  EXPECT_EQ(dev.completed(), 2u);
  EXPECT_EQ(mem.phys().Read64(kBuf + 0x1000), 0xfeedfacecafebeefull);
  EXPECT_GE(sim.now() - before, BlockConfig{}.read_latency);
}

TEST(FabricTest, RoutesBetweenNics) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  NicConfig cfg_a;
  NicConfig cfg_b;
  cfg_b.mmio_base = 0xf0100000;
  Nic nic_a(sim, mem, cfg_a);
  Nic nic_b(sim, mem, cfg_b);
  Fabric fabric(sim, FabricConfig{});
  fabric.Attach(1, &nic_a);
  fabric.Attach(2, &nic_b);

  // Configure B's RX ring.
  NicDescriptor d;
  d.buf = kRxBufs;
  uint8_t raw[16] = {};
  memcpy(raw, &d.buf, 8);
  mem.phys().Write(kRxRing, raw, 16);
  mem.Write(0, cfg_b.mmio_base + kNicRxBase, 8, kRxRing);
  mem.Write(0, cfg_b.mmio_base + kNicRxSize, 8, 8);
  mem.Write(0, cfg_b.mmio_base + kNicRxTailAddr, 8, kRxTail);

  // A transmits a frame addressed to node 2.
  std::vector<uint8_t> frame(FabricHeader::kBytes + 4);
  FabricHeader h;
  h.dst = 2;
  h.src = 1;
  h.WriteTo(&frame);
  frame[16] = 'x';
  mem.phys().Write(kTxBufs, frame.data(), frame.size());
  NicDescriptor td;
  td.buf = kTxBufs;
  td.len = static_cast<uint32_t>(frame.size());
  uint8_t traw[16];
  memcpy(traw, &td.buf, 8);
  memcpy(traw + 8, &td.len, 4);
  memset(traw + 12, 0, 4);
  mem.phys().Write(kTxRing, traw, 16);
  mem.Write(0, cfg_a.mmio_base + kNicTxBase, 8, kTxRing);
  mem.Write(0, cfg_a.mmio_base + kNicTxSize, 8, 8);
  mem.Write(0, cfg_a.mmio_base + kNicTxDoorbell, 8, 1);

  sim.queue().RunAll();
  EXPECT_EQ(fabric.frames_routed(), 1u);
  EXPECT_EQ(nic_b.rx_frames(), 1u);
  EXPECT_EQ(mem.phys().Read64(kRxTail), 1u);
  EXPECT_EQ(mem.phys().Read8(kRxBufs + 16), 'x');
}

TEST(DeviceIntegrationTest, NicRxWakesHardwareThread) {
  // The E2/E3 mechanism end-to-end: a hardware thread monitors the RX tail;
  // a frame arrival (DMA) wakes it without any interrupt.
  Machine m;
  Nic nic(m.sim(), m.mem(), NicConfig{});
  // Post one RX buffer.
  uint8_t raw[16] = {};
  const Addr buf = kRxBufs;
  memcpy(raw, &buf, 8);
  m.mem().phys().Write(kRxRing, raw, 16);
  m.mem().Write(0, NicConfig{}.mmio_base + kNicRxBase, 8, kRxRing);
  m.mem().Write(0, NicConfig{}.mmio_base + kNicRxSize, 8, 8);
  m.mem().Write(0, NicConfig{}.mmio_base + kNicRxTailAddr, 8, kRxTail);

  std::vector<Tick> handled_at;
  const Ptid server = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Monitor(kRxTail);
        for (;;) {
          co_await ctx.Mwait();
          co_await ctx.Load(kRxBufs);  // touch the frame
          handled_at.push_back(co_await ctx.ReadCsr(Csr::kCycle));
        }
      },
      true);
  m.Start(server);
  m.RunFor(500);
  ASSERT_EQ(m.threads().thread(server).state(), ThreadState::kWaiting);

  const Tick inject_time = m.sim().now();
  nic.InjectFrame({7, 7, 7, 7});
  m.RunFor(2000);
  ASSERT_EQ(handled_at.size(), 1u);
  const Tick latency = handled_at[0] - inject_time;
  // DMA latency (300) + wakeup + a few instructions: far below a baseline
  // IRQ + schedule path, and bounded.
  EXPECT_GE(latency, NicConfig{}.rx_dma_latency);
  EXPECT_LE(latency, NicConfig{}.rx_dma_latency + 150);
}

TEST_F(NicTest, TxRingWrapsAround) {
  std::vector<std::vector<uint8_t>> sent;
  nic_.SetTxHandler([&](const std::vector<uint8_t>& f) { sent.push_back(f); });
  // 20 transmissions through an 8-entry ring.
  for (uint64_t i = 0; i < 20; i++) {
    const Addr buf = kTxBufs + (i % 8) * 256;
    mem_.phys().Write8(buf, static_cast<uint8_t>(i));
    NicDescriptor d;
    d.buf = buf;
    d.len = 1;
    WriteDesc(kTxRing + (i % 8) * NicDescriptor::kBytes, d);
    Mmio(kNicTxDoorbell, i + 1);
    sim_.queue().RunAll();
  }
  ASSERT_EQ(sent.size(), 20u);
  for (uint64_t i = 0; i < 20; i++) {
    EXPECT_EQ(sent[i][0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ(mem_.phys().Read64(kTxHead), 20u);
}

TEST_F(NicTest, BurstOfFramesDeliveredInOrder) {
  for (uint8_t i = 0; i < 6; i++) {
    nic_.InjectFrame({i});
  }
  sim_.queue().RunAll();
  EXPECT_EQ(nic_.rx_frames(), 6u);
  for (uint64_t i = 0; i < 6; i++) {
    EXPECT_EQ(mem_.phys().Read8(kRxBufs + i * 2048), i);
  }
  EXPECT_EQ(mem_.phys().Read64(kRxTail), 6u);
}

TEST_F(NicTest, RxWrapsRingAfterConsumption) {
  for (int round = 0; round < 3; round++) {
    for (uint8_t i = 0; i < 8; i++) {
      nic_.InjectFrame({static_cast<uint8_t>(round * 8 + i)});
    }
    sim_.queue().RunAll();
    Mmio(kNicRxHead, (round + 1) * 8);
  }
  EXPECT_EQ(nic_.rx_frames(), 24u);
  EXPECT_EQ(nic_.rx_dropped(), 0u);
  // Last round overwrote the first slots.
  EXPECT_EQ(mem_.phys().Read8(kRxBufs), 16u);
}

TEST(BlockDeviceTest, QueuedCommandsCompleteSerially) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  BlockDevice dev(sim, mem, BlockConfig{});
  const Addr kSq = 0x200000;
  const Addr kCqTail = 0x202000;
  auto mmio = [&](Addr reg, uint64_t v) { mem.Write(0, BlockConfig{}.mmio_base + reg, 8, v); };
  mmio(kBlkSqBase, kSq);
  mmio(kBlkSqSize, 16);
  mmio(kBlkCqTailAddr, kCqTail);
  for (uint64_t i = 0; i < 4; i++) {
    dev.storage().Write64(i * 512, 0x1000 + i);
    uint8_t cmd[BlockCommand::kBytes] = {};
    cmd[0] = BlockCommand::kOpRead;
    const uint64_t lba = i;
    const uint32_t len = 512;
    const Addr buf = 0x300000 + i * 512;
    memcpy(cmd + 8, &lba, 8);
    memcpy(cmd + 16, &len, 4);
    memcpy(cmd + 24, &buf, 8);
    mem.phys().Write(kSq + i * BlockCommand::kBytes, cmd, sizeof(cmd));
  }
  const Tick t0 = sim.now();
  mmio(kBlkSqDoorbell, 4);  // one doorbell for the whole batch
  sim.queue().RunAll();
  EXPECT_EQ(dev.completed(), 4u);
  EXPECT_EQ(mem.phys().Read64(kCqTail), 4u);
  for (uint64_t i = 0; i < 4; i++) {
    EXPECT_EQ(mem.phys().Read64(0x300000 + i * 512), 0x1000 + i);
  }
  // Serial device: 4 commands take at least 4x the single-command latency.
  EXPECT_GE(sim.now() - t0, 4 * BlockConfig{}.read_latency);
}

TEST(FabricTest, UnroutableFrameDropped) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  Nic nic(sim, mem, NicConfig{});
  Fabric fabric(sim, FabricConfig{});
  fabric.Attach(1, &nic);
  std::vector<uint8_t> frame(16, 0);
  uint64_t dst = 99;  // unknown node
  memcpy(frame.data(), &dst, 8);
  fabric.InjectFrom(1, frame);
  sim.queue().RunAll();
  EXPECT_EQ(fabric.frames_dropped(), 1u);
  EXPECT_EQ(fabric.frames_routed(), 0u);
}

TEST(FabricTest, SelfAddressedFrameDropped) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  Nic nic(sim, mem, NicConfig{});
  Fabric fabric(sim, FabricConfig{});
  fabric.Attach(1, &nic);
  std::vector<uint8_t> frame(16, 0);
  uint64_t dst = 1;
  memcpy(frame.data(), &dst, 8);
  fabric.InjectFrom(1, frame);
  sim.queue().RunAll();
  EXPECT_EQ(fabric.frames_dropped(), 1u);
}

TEST(FabricTest, SerializationDelayScalesWithFrameSize) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  NicConfig cfg_a;
  NicConfig cfg_b;
  cfg_b.mmio_base = 0xf0100000;
  Nic a(sim, mem, cfg_a);
  Nic b(sim, mem, cfg_b);
  FabricConfig fc;
  Fabric fabric(sim, fc);
  fabric.Attach(1, &a);
  fabric.Attach(2, &b);
  // Configure B minimally so frames deliver.
  uint8_t raw[16] = {};
  const Addr buf = 0x110000;
  memcpy(raw, &buf, 8);
  mem.phys().Write(0x100000, raw, 16);
  mem.Write(0, cfg_b.mmio_base + kNicRxBase, 8, 0x100000);
  mem.Write(0, cfg_b.mmio_base + kNicRxSize, 8, 8);

  auto send = [&](size_t bytes) {
    std::vector<uint8_t> frame(bytes, 0);
    uint64_t dst = 2;
    memcpy(frame.data(), &dst, 8);
    const Tick t0 = sim.now();
    fabric.InjectFrom(1, frame);
    sim.queue().RunAll();
    return sim.now() - t0;
  };
  const Tick small = send(64);
  const Tick large = send(2048);
  EXPECT_GT(large, small);
  EXPECT_EQ(large - small, (2048 - 64) / fc.bytes_per_cycle);
}

TEST(MultiQueueNicTest, RssSteersFlowsAcrossQueues) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  NicConfig cfg;
  cfg.num_rx_queues = 4;
  Nic nic(sim, mem, cfg);
  // Configure all 4 queues with rings and tails.
  for (uint32_t q = 0; q < 4; q++) {
    const Addr ring = 0x100000 + q * 0x1000;
    const Addr bufs = 0x200000 + q * 0x10000;
    const Addr tail = 0x300000 + q * 0x40;
    // 32 buffers per queue: RSS may put up to ~half the 64 flows on one queue.
    for (uint64_t i = 0; i < 32; i++) {
      const Addr buf = bufs + i * 2048;
      uint8_t raw[16] = {};
      memcpy(raw, &buf, 8);
      mem.phys().Write(ring + i * 16, raw, 16);
    }
    const Addr regs = q == 0 ? cfg.mmio_base : cfg.mmio_base + kNicRegSpan +
                                                   (q - 1) * kNicRxQueueSpan;
    mem.Write(0, regs + 0x00, 8, ring);
    mem.Write(0, regs + 0x08, 8, 32);
    mem.Write(0, regs + 0x10, 8, tail);
  }
  // 64 distinct flow ids spread across queues.
  for (uint64_t flow = 1; flow <= 64; flow++) {
    std::vector<uint8_t> frame(16, 0);
    memcpy(frame.data(), &flow, 8);
    nic.InjectFrame(std::move(frame));
  }
  sim.queue().RunAll();
  EXPECT_EQ(nic.rx_frames(), 64u);
  uint32_t nonempty = 0;
  uint64_t total = 0;
  for (uint32_t q = 0; q < 4; q++) {
    const uint64_t n = nic.rx_produced_on(q);
    EXPECT_EQ(mem.phys().Read64(0x300000 + q * 0x40), n);
    total += n;
    nonempty += n > 0 ? 1 : 0;
  }
  EXPECT_EQ(total, 64u);
  EXPECT_GE(nonempty, 3u);  // hash spreads 64 flows over >= 3 of 4 queues
}

TEST(MultiQueueNicTest, SameFlowStaysOnOneQueue) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  NicConfig cfg;
  cfg.num_rx_queues = 4;
  Nic nic(sim, mem, cfg);
  const Addr ring = 0x100000;
  const Addr tail = 0x300000;
  // Only configure the queue the flow hashes to after observing it once:
  // instead, configure all queues identically pointing at separate tails.
  for (uint32_t q = 0; q < 4; q++) {
    const Addr regs = q == 0 ? cfg.mmio_base : cfg.mmio_base + kNicRegSpan +
                                                   (q - 1) * kNicRxQueueSpan;
    for (uint64_t i = 0; i < 8; i++) {
      const Addr buf = 0x200000 + q * 0x10000 + i * 2048;
      uint8_t raw[16] = {};
      memcpy(raw, &buf, 8);
      mem.phys().Write(ring + q * 0x1000 + i * 16, raw, 16);
    }
    mem.Write(0, regs + 0x00, 8, ring + q * 0x1000);
    mem.Write(0, regs + 0x08, 8, 8);
    mem.Write(0, regs + 0x10, 8, tail + q * 0x40);
  }
  const uint64_t flow = 0x1234;
  for (int i = 0; i < 6; i++) {
    std::vector<uint8_t> frame(16, 0);
    memcpy(frame.data(), &flow, 8);
    nic.InjectFrame(std::move(frame));
    sim.queue().RunAll();
  }
  uint32_t queues_used = 0;
  for (uint32_t q = 0; q < 4; q++) {
    queues_used += nic.rx_produced_on(q) > 0 ? 1 : 0;
  }
  EXPECT_EQ(queues_used, 1u);  // in-order delivery per flow
}

TEST(MultiQueueNicTest, ExplicitQueueSteering) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  NicConfig cfg;
  cfg.num_rx_queues = 2;
  Nic nic(sim, mem, cfg);
  const Addr regs1 = cfg.mmio_base + kNicRegSpan;
  uint8_t raw[16] = {};
  const Addr buf = 0x200000;
  memcpy(raw, &buf, 8);
  mem.phys().Write(0x100000, raw, 16);
  mem.Write(0, regs1 + 0x00, 8, 0x100000);
  mem.Write(0, regs1 + 0x08, 8, 8);
  mem.Write(0, regs1 + 0x10, 8, 0x300000);
  nic.InjectFrameToQueue(1, {9, 9});
  sim.queue().RunAll();
  EXPECT_EQ(nic.rx_produced_on(1), 1u);
  EXPECT_EQ(nic.rx_produced_on(0), 0u);
  EXPECT_EQ(mem.phys().Read64(0x300000), 1u);
}

TEST(FabricTest, LossInjectionDropsFraction) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  NicConfig cfg_a;
  NicConfig cfg_b;
  cfg_b.mmio_base = 0xf0100000;
  Nic a(sim, mem, cfg_a);
  Nic b(sim, mem, cfg_b);
  FabricConfig fc;
  fc.loss_rate = 0.3;
  Fabric fabric(sim, fc);
  fabric.Attach(1, &a);
  fabric.Attach(2, &b);
  std::vector<uint8_t> frame(16, 0);
  uint64_t dst = 2;
  memcpy(frame.data(), &dst, 8);
  for (int i = 0; i < 2000; i++) {
    fabric.InjectFrom(1, frame);
  }
  sim.queue().RunAll();
  const double lost = static_cast<double>(fabric.frames_lost()) / 2000.0;
  EXPECT_NEAR(lost, 0.3, 0.05);
  EXPECT_EQ(fabric.frames_lost() + fabric.frames_routed(), 2000u);
}

}  // namespace
}  // namespace casc
