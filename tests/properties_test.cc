// Property-based tests: invariants checked over parameterized sweeps and
// randomized op sequences (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <tuple>

#include "src/cpu/machine.h"
#include "src/hwt/thread_system.h"
#include "src/isa/assembler.h"
#include "src/mem/cache.h"
#include "src/mem/memory_system.h"
#include "src/sim/rng.h"
#include "src/sim/simulation.h"
#include "src/sim/stats.h"
#include "src/workload/distributions.h"
#include "src/workload/loadgen.h"

namespace casc {
namespace {

// ---------------------------------------------------------------------------
// ISA: every opcode round-trips through encode/decode for random operands.
class EncodingProperty : public ::testing::TestWithParam<int> {};

TEST_P(EncodingProperty, RandomOperandsRoundTrip) {
  const Opcode op = static_cast<Opcode>(GetParam());
  Rng rng(1000 + GetParam());
  for (int i = 0; i < 200; i++) {
    Instruction in;
    in.op = op;
    if (IsJFormat(op)) {
      in.imm = static_cast<int32_t>(rng.NextRange(0, (1 << 26) - 1)) - (1 << 25);
    } else {
      in.rd = static_cast<uint8_t>(rng.NextBounded(32));
      in.rs1 = static_cast<uint8_t>(rng.NextBounded(32));
      if (IsIFormat(op)) {
        in.imm = static_cast<int16_t>(rng.NextBounded(1 << 16));
      } else {
        in.rs2 = static_cast<uint8_t>(rng.NextBounded(32));
      }
    }
    EXPECT_EQ(Decode(Encode(in)), in) << OpcodeName(op);
    // Disassembly of a valid instruction never yields the unknown marker.
    EXPECT_EQ(Disassemble(in).find('?'), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodingProperty,
                         ::testing::Range(0, static_cast<int>(Opcode::kCount)),
                         [](const auto& info) {
                           return OpcodeName(static_cast<Opcode>(info.param));
                         });

// ---------------------------------------------------------------------------
// Cache: geometry sweep; invariants under random access streams.
class CacheProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t /*size*/, uint32_t /*ways*/>> {};

TEST_P(CacheProperty, AccountingAndResidency) {
  const auto [size, ways] = GetParam();
  Cache cache(CacheConfig{"p", size, ways, 4});
  Rng rng(size + ways);
  const uint64_t lines = size / kLineSize;
  uint64_t accesses = 0;
  for (int i = 0; i < 5000; i++) {
    const Addr addr = rng.NextBounded(4 * lines) * kLineSize + rng.NextBounded(kLineSize);
    const bool write = rng.NextBool(0.3);
    cache.Access(addr, write);
    accesses++;
    // Just-accessed lines are always resident.
    EXPECT_TRUE(cache.Probe(addr));
  }
  EXPECT_EQ(cache.hits() + cache.misses(), accesses);
  EXPECT_LE(cache.writebacks(), cache.misses());
  // A working set that fits in one set's ways never misses after warmup.
  cache.InvalidateAll();
  std::vector<Addr> ws;
  for (uint32_t w = 0; w < ways; w++) {
    ws.push_back((static_cast<Addr>(w) * lines / ways) * kLineSize);
  }
  for (Addr a : ws) {
    cache.Access(a, false);
  }
  for (int round = 0; round < 8; round++) {
    for (Addr a : ws) {
      EXPECT_TRUE(cache.Access(a, false));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheProperty,
                         ::testing::Combine(::testing::Values(4096u, 32768u, 262144u),
                                            ::testing::Values(1u, 2u, 8u, 16u)));

// ---------------------------------------------------------------------------
// Histogram: quantiles are monotone and bounded by min/max for any source
// distribution.
class HistogramProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(HistogramProperty, QuantilesMonotoneAndBounded) {
  const ServiceDist dist = ServiceDist::Parse(GetParam(), 5000);
  Rng rng(77);
  Histogram h;
  for (int i = 0; i < 50000; i++) {
    h.Record(dist.Sample(rng));
  }
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const uint64_t v = h.Quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  EXPECT_GE(h.mean(), static_cast<double>(h.min()));
  EXPECT_LE(h.mean(), static_cast<double>(h.max()));
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramProperty,
                         ::testing::Values("fixed", "exp", "bimodal", "pareto", "lognormal"));

// ---------------------------------------------------------------------------
// Monitor filter: no lost wakeups under randomized interleavings of
// watch/write/mwait, for any filter geometry.
class MonitorProperty : public ::testing::TestWithParam<uint32_t /*seed*/> {};

TEST_P(MonitorProperty, NeverLosesANotification) {
  StatsRegistry stats;
  MonitorFilter filter(MonitorFilterConfig{}, stats);
  Rng rng(GetParam());
  std::map<Ptid, bool> waiting;
  std::map<Ptid, Addr> watch_addr;
  std::map<Ptid, bool> owed;  // a write happened since the last consume/wake
  int wakes = 0;
  filter.SetWakeHandler([&](Ptid p, Addr) {
    EXPECT_TRUE(owed[p]) << "spurious wake of ptid " << p;
    owed[p] = false;
    waiting[p] = false;
    wakes++;
  });
  for (int step = 0; step < 3000; step++) {
    const Ptid p = static_cast<Ptid>(rng.NextBounded(6));
    switch (rng.NextBounded(3)) {
      case 0: {  // (re)arm a watch on a random line
        if (!waiting[p]) {
          filter.ClearWatches(p);
          owed[p] = false;
          const Addr line = rng.NextBounded(8) * kLineSize;
          ASSERT_TRUE(filter.AddWatch(p, line));
          watch_addr[p] = line;
        }
        break;
      }
      case 1: {  // write some line
        const Addr line = rng.NextBounded(8) * kLineSize;
        for (auto& [tp, addr] : watch_addr) {
          if (addr == line && filter.IsWatching(tp, line)) {
            owed[tp] = true;
          }
        }
        filter.OnWrite(line + rng.NextBounded(kLineSize), 1);
        break;
      }
      case 2: {  // mwait
        if (!waiting[p] && filter.IsWatching(p, watch_addr[p])) {
          if (filter.ConsumePending(p)) {
            EXPECT_TRUE(owed[p]) << "pending with no prior write";
            owed[p] = false;
          } else {
            EXPECT_FALSE(owed[p]) << "lost notification: owed but not pending";
            waiting[p] = true;
            filter.SetWaiting(p, true);
          }
        }
        break;
      }
    }
  }
  EXPECT_GT(wakes, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorProperty, ::testing::Range(1u, 9u));

// ---------------------------------------------------------------------------
// Hardware scheduler: proportional share and no starvation for random
// priority mixes.
class SchedProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t /*threads*/, uint32_t /*width*/>> {};

TEST_P(SchedProperty, WeightedShareAndNoStarvation) {
  const auto [n, width] = GetParam();
  Rng rng(n * 31 + width);
  std::vector<std::unique_ptr<HwThread>> threads;
  SchedQueue q;
  std::map<Ptid, uint64_t> picks;
  uint64_t total_weight = 0;
  for (uint32_t i = 0; i < n; i++) {
    threads.push_back(std::make_unique<HwThread>(i, 0));
    threads.back()->set_state(ThreadState::kRunnable);
    threads.back()->arch().prio = 1 + rng.NextBounded(4);
    total_weight += threads.back()->arch().prio;
    q.Add(threads.back().get());
  }
  const int kCycles = 20000;
  std::vector<HwThread*> picked;
  uint64_t total_picks = 0;
  for (int c = 0; c < kCycles; c++) {
    q.PickUpTo(0, width, &picked);
    for (HwThread* t : picked) {
      picks[t->ptid()]++;
      total_picks++;
    }
  }
  // Every thread runs (no starvation)...
  for (uint32_t i = 0; i < n; i++) {
    EXPECT_GT(picks[i], 0u) << "starved thread " << i;
  }
  // ...and the head-of-rotation weighting holds approximately when a single
  // slot forces strict sharing.
  if (width == 1) {
    for (uint32_t i = 0; i < n; i++) {
      const double expect =
          static_cast<double>(threads[i]->arch().prio) / static_cast<double>(total_weight);
      const double got = static_cast<double>(picks[i]) / static_cast<double>(total_picks);
      EXPECT_NEAR(got, expect, 0.02) << "thread " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Mixes, SchedProperty,
                         ::testing::Combine(::testing::Values(2u, 5u, 16u, 48u),
                                            ::testing::Values(1u, 2u, 4u)));

// ---------------------------------------------------------------------------
// ThreadSystem fuzz: random supervisor-issued management ops never violate
// the state machine or crash; queue membership matches thread state.
class ThreadSystemFuzz : public ::testing::TestWithParam<uint32_t /*seed*/> {};

TEST_P(ThreadSystemFuzz, StateMachineInvariants) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  HwtConfig cfg;
  cfg.threads_per_core = 16;
  cfg.rf_slots = 4;
  cfg.l2_slots = 4;
  cfg.l3_slots = 4;
  ThreadSystem ts(sim, mem, cfg, 1);
  Rng rng(GetParam());
  // Every thread gets an exception descriptor slot: faults raised by the
  // fuzz (e.g. monitor-filter overflow) must disable the offender, not halt
  // the machine.
  for (Ptid p = 0; p < 16; p++) {
    ts.InitThread(p, 0x1000, /*supervisor=*/p == 0, /*edp=*/0x30000 + p * 64);
  }
  ts.thread(0).set_state(ThreadState::kRunnable);

  for (int step = 0; step < 4000 && !ts.halted(); step++) {
    const Ptid target = 1 + static_cast<Ptid>(rng.NextBounded(15));
    switch (rng.NextBounded(6)) {
      case 0:
        ts.Start(0, target);
        break;
      case 1:
        ts.Stop(0, target);
        break;
      case 2:
        if (ts.thread(target).state() == ThreadState::kDisabled) {
          ts.Rpush(0, target, static_cast<uint32_t>(rng.NextBounded(32)), rng.Next());
        }
        break;
      case 3:
        ts.Monitor(target, rng.NextBounded(64) * kLineSize);
        break;
      case 4:
        if (ts.thread(target).state() == ThreadState::kRunnable) {
          ts.Mwait(target);
        }
        break;
      case 5:
        mem.DmaWrite64(rng.NextBounded(64) * kLineSize, rng.Next());
        break;
    }
    sim.queue().RunUntil(sim.now() + rng.NextBounded(50));

    // Invariants after every step:
    // r0 stays zero everywhere; disabled/waiting threads are never picked.
    std::vector<HwThread*> picked;
    ts.queue(0).PickUpTo(sim.now() + 10000, 4, &picked);
    for (HwThread* t : picked) {
      EXPECT_EQ(t->state(), ThreadState::kRunnable);
    }
    uint32_t rf = ts.store(0).rf_occupancy();
    EXPECT_LE(rf, cfg.rf_slots);
    for (Ptid p = 0; p < ts.num_threads(); p++) {
      EXPECT_EQ(ts.thread(p).ReadGpr(0), 0u);
    }
  }
  // The supervisor with an EDP never faults fatally.
  EXPECT_FALSE(ts.halted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadSystemFuzz, ::testing::Range(100u, 110u));

// ---------------------------------------------------------------------------
// Determinism: identical seeds produce identical executions end to end.
class DeterminismProperty : public ::testing::TestWithParam<uint64_t /*seed*/> {};

TEST_P(DeterminismProperty, SameSeedSameTrace) {
  auto run = [&](uint64_t seed) -> std::pair<Tick, uint64_t> {
    MachineConfig cfg;
    cfg.seed = seed;
    Machine m(cfg);
    uint64_t sum = 0;
    for (uint32_t i = 0; i < 8; i++) {
      const Ptid p = m.BindNative(
          0, i,
          [&sum, &m, i](GuestContext& ctx) -> GuestTask {
            for (int k = 0; k < 20; k++) {
              co_await ctx.Compute(m.sim().rng().NextBounded(50) + 1);
              co_await ctx.Store(0x8000 + i * 64, static_cast<uint64_t>(k));
              sum += co_await ctx.Load(0x8000 + ((i + 1) % 8) * 64);
            }
          },
          true);
      m.Start(p);
    }
    m.RunToQuiescence();
    return {m.sim().now(), sum};
  };
  const auto a = run(GetParam());
  const auto b = run(GetParam());
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty, ::testing::Values(1u, 7u, 42u, 1234u));

// ---------------------------------------------------------------------------
// Assembler: programs synthesized from random instruction mixes assemble,
// load, and disassemble cleanly; label arithmetic is self-consistent.
class AssemblerProperty : public ::testing::TestWithParam<uint32_t /*seed*/> {};

TEST_P(AssemblerProperty, SynthesizedProgramsAssemble) {
  Rng rng(GetParam());
  std::string src;
  const int n = 40;
  for (int i = 0; i < n; i++) {
    src += "l" + std::to_string(i) + ":\n";
    switch (rng.NextBounded(5)) {
      case 0:
        src += "  addi a0, a0, " + std::to_string(rng.NextBounded(100)) + "\n";
        break;
      case 1:
        src += "  ld a1, " + std::to_string(8 * rng.NextBounded(8)) + "(sp)\n";
        break;
      case 2: {
        const int target = static_cast<int>(rng.NextBounded(n));
        src += "  beq a0, a1, l" + std::to_string(target) + "\n";
        break;
      }
      case 3:
        src += "  monitor a2\n";
        break;
      case 4:
        src += "  li a3, " + std::to_string(rng.NextBounded(1 << 20)) + "\n";
        break;
    }
  }
  src += "end:\n  halt\n";
  const AssembleResult r = Assembler::Assemble(src, 0x1000);
  ASSERT_TRUE(r.ok) << r.error;
  // Labels are in ascending order and within the image.
  Addr prev = 0;
  for (int i = 0; i < n; i++) {
    const Addr a = r.program.Symbol("l" + std::to_string(i));
    EXPECT_GE(a, prev);
    EXPECT_LT(a, r.program.end());
    prev = a;
  }
  // The whole image disassembles without tripping the decoder.
  for (size_t off = 0; off + 4 <= r.program.bytes.size(); off += 4) {
    uint32_t word = 0;
    memcpy(&word, &r.program.bytes[off], 4);
    Disassemble(word);  // must not crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerProperty, ::testing::Range(1u, 11u));

// ---------------------------------------------------------------------------
// Context store: occupancy conservation under random wake/stop churn across
// tier geometries.
class ContextStoreProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint32_t>> {};

TEST_P(ContextStoreProperty, TierOccupancyConserved) {
  const auto [rf, l2, l3] = GetParam();
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  HwtConfig cfg;
  cfg.threads_per_core = 32;
  cfg.rf_slots = rf;
  cfg.l2_slots = l2;
  cfg.l3_slots = l3;
  ThreadSystem ts(sim, mem, cfg, 1);
  Rng rng(rf * 7 + l2 * 3 + l3);
  for (int step = 0; step < 2000; step++) {
    const Ptid p = static_cast<Ptid>(rng.NextBounded(32));
    if (rng.NextBool(0.5)) {
      ts.MakeRunnable(p);
    } else {
      ts.Disable(p);
    }
    sim.queue().RunUntil(sim.now() + 5);
    EXPECT_LE(ts.store(0).rf_occupancy(), rf);
    EXPECT_LE(ts.store(0).l2_used(), l2);
    EXPECT_LE(ts.store(0).l3_used(), l3);
    // Every thread has exactly one tier label (no double-occupancy), and each
    // tier's slot count equals the number of threads labeled with it (DRAM is
    // unbounded and holds the rest).
    uint32_t per_tier[4] = {};
    for (Ptid q = 0; q < 32; q++) {
      per_tier[static_cast<size_t>(ts.thread(q).tier())]++;
    }
    EXPECT_EQ(per_tier[0] + per_tier[1] + per_tier[2] + per_tier[3], 32u);
    EXPECT_EQ(per_tier[0], ts.store(0).rf_occupancy());
    EXPECT_EQ(per_tier[1], ts.store(0).l2_used());
    EXPECT_EQ(per_tier[2], ts.store(0).l3_used());
  }
}

// ForceTier is the test/bench hook that relocates saved state directly; the
// slot bookkeeping must stay exact when it is interleaved with normal
// wake/stop churn (a released slot must be reusable, an acquired one counted).
TEST_P(ContextStoreProperty, ForceTierChurnKeepsSlotAccountingExact) {
  const auto [rf, l2, l3] = GetParam();
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  HwtConfig cfg;
  cfg.threads_per_core = 32;
  cfg.rf_slots = rf;
  cfg.l2_slots = l2;
  cfg.l3_slots = l3;
  ThreadSystem ts(sim, mem, cfg, 1);
  Rng rng(1000 + rf * 7 + l2 * 3 + l3);
  const StorageTier kTiers[] = {StorageTier::kRegFile, StorageTier::kL2, StorageTier::kL3,
                                StorageTier::kDram};
  for (int step = 0; step < 2000; step++) {
    const Ptid p = static_cast<Ptid>(rng.NextBounded(32));
    switch (rng.NextBounded(3)) {
      case 0:
        ts.MakeRunnable(p);
        break;
      case 1:
        ts.Disable(p);
        break;
      default: {
        // Only force into a tier with a free slot (or out to DRAM); the hook
        // documents that callers pick reachable placements.
        const StorageTier t = kTiers[rng.NextBounded(4)];
        const bool fits = (t == StorageTier::kDram) ||
                          (t == StorageTier::kRegFile && ts.store(0).rf_occupancy() < rf) ||
                          (t == StorageTier::kL2 && ts.store(0).l2_used() < l2) ||
                          (t == StorageTier::kL3 && ts.store(0).l3_used() < l3);
        if (fits) {
          ts.store(0).ForceTier(ts.thread(p), t);
        }
        break;
      }
    }
    sim.queue().RunUntil(sim.now() + 5);
    EXPECT_LE(ts.store(0).rf_occupancy(), rf);
    EXPECT_LE(ts.store(0).l2_used(), l2);
    EXPECT_LE(ts.store(0).l3_used(), l3);
    uint32_t per_tier[4] = {};
    for (Ptid q = 0; q < 32; q++) {
      per_tier[static_cast<size_t>(ts.thread(q).tier())]++;
    }
    ASSERT_EQ(per_tier[0], ts.store(0).rf_occupancy()) << "step " << step;
    ASSERT_EQ(per_tier[1], ts.store(0).l2_used()) << "step " << step;
    ASSERT_EQ(per_tier[2], ts.store(0).l3_used()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Tiers, ContextStoreProperty,
                         ::testing::Values(std::make_tuple(2u, 2u, 2u),
                                           std::make_tuple(4u, 8u, 8u),
                                           std::make_tuple(16u, 8u, 4u),
                                           std::make_tuple(32u, 0u, 0u)));

// ---------------------------------------------------------------------------
// Interpreted vs native cost parity: the same logical work costs the same
// order of cycles in both execution models (they share the timing paths).
class ParityProperty : public ::testing::TestWithParam<uint32_t /*iterations*/> {};

TEST_P(ParityProperty, LoopCostsComparable) {
  const uint32_t iters = GetParam();
  // Interpreted: addi+bne loop = 2 cycles/iteration.
  Machine mi;
  const Ptid pi = mi.LoadSource(0, 0,
                                "  li a0, 0\n"
                                "  li a2, " + std::to_string(iters) + "\n"
                                "loop:\n"
                                "  addi a0, a0, 1\n"
                                "  bne a0, a2, loop\n"
                                "  halt\n",
                                true);
  mi.Start(pi);
  mi.RunToQuiescence();
  const Tick interp = mi.sim().now();

  Machine mn;
  const Ptid pn = mn.BindNative(
      0, 0,
      [iters](GuestContext& ctx) -> GuestTask { co_await ctx.Compute(2 * iters); }, true);
  mn.Start(pn);
  mn.RunToQuiescence();
  const Tick native = mn.sim().now();
  // Allow slack for the interpreted program's cold I-cache startup (a few
  // hundred cycles of compulsory misses) on top of proportional noise.
  EXPECT_NEAR(static_cast<double>(interp), static_cast<double>(native),
              0.15 * static_cast<double>(native) + 400.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParityProperty, ::testing::Values(100u, 1000u, 10000u));

// ---------------------------------------------------------------------------
// Queueing-theory validation: an M/M/1 system built from hardware threads
// (Poisson arrivals into a single-slot core, one thread per request,
// processor sharing) must reproduce the closed-form mean sojourn
// S / (1 - rho) — a strong end-to-end check of arrivals, scheduling, and
// timing.
class QueueTheoryProperty : public ::testing::TestWithParam<double /*rho*/> {};

TEST_P(QueueTheoryProperty, Mm1MeanSojournMatchesClosedForm) {
  const double rho = GetParam();
  constexpr Tick kService = 400;
  MachineConfig cfg;
  cfg.hwt.smt_width = 1;
  cfg.hwt.threads_per_core = 128;
  cfg.hwt.rf_slots = 128;  // keep context-store effects out of the math
  Machine m(cfg);
  constexpr uint32_t kWorkers = 100;
  const Addr kMbox = 0x02000000;
  std::unordered_map<uint64_t, Tick> sent;
  double total_sojourn = 0;
  uint64_t completed = 0;
  std::vector<uint32_t> idle;
  std::deque<std::pair<uint64_t, Tick>> backlog;
  auto assign = [&](uint32_t w, uint64_t id, Tick service) {
    uint8_t buf[24];
    memcpy(buf, &id, 8);
    memcpy(buf + 8, &service, 8);
    uint64_t stamp = id;
    memcpy(buf + 16, &stamp, 8);
    m.mem().DmaWrite(kMbox + w * 64, buf, sizeof(buf));
  };
  for (uint32_t w = 0; w < kWorkers; w++) {
    const Ptid p = m.BindNative(
        0, w,
        [&, w](GuestContext& ctx) -> GuestTask {
          co_await ctx.Monitor(kMbox + w * 64);
          for (;;) {
            co_await ctx.Mwait();
            const uint64_t id = co_await ctx.Load(kMbox + w * 64);
            const uint64_t service = co_await ctx.Load(kMbox + w * 64 + 8);
            co_await ctx.Compute(service);
            total_sojourn += static_cast<double>(m.sim().now() - sent[id]);
            completed++;
            if (!backlog.empty()) {
              const auto [bid, bsvc] = backlog.front();
              backlog.pop_front();
              assign(w, bid, bsvc);
            } else {
              idle.push_back(w);
            }
          }
        },
        true);
    m.Start(p);
  }
  m.RunFor(10000);
  for (uint32_t w = 0; w < kWorkers; w++) {
    idle.push_back(w);
  }
  OpenLoopSource src(m.sim(), kService / rho, ServiceDist::Exponential(kService),
                     [&](uint64_t id, Tick service) {
                       sent[id] = m.sim().now();
                       if (!idle.empty()) {
                         const uint32_t w = idle.back();
                         idle.pop_back();
                         assign(w, id, service);
                       } else {
                         backlog.push_back({id, service});
                       }
                     });
  src.StartAt(m.sim().now() + 1);
  m.RunFor(4'000'000);
  src.Stop();
  m.RunFor(400000);
  ASSERT_GT(completed, 1000u);
  const double mean = total_sojourn / static_cast<double>(completed);
  const double theory = static_cast<double>(kService) / (1.0 - rho);
  // 25% tolerance: finite run, worker-handoff overheads, PS vs M/M/1 mean
  // equivalence (exact for exponential service).
  EXPECT_NEAR(mean / theory, 1.0, 0.25) << "mean=" << mean << " theory=" << theory;
}

INSTANTIATE_TEST_SUITE_P(Loads, QueueTheoryProperty, ::testing::Values(0.3, 0.5, 0.7));

// ---------------------------------------------------------------------------
// Interpreter robustness: executing *random bytes* as code never crashes the
// simulator; every outcome is an architected one (fault descriptor, machine
// halt, self-disable, or still running at the cycle budget).
class RandomCodeFuzz : public ::testing::TestWithParam<uint32_t /*seed*/> {};

TEST_P(RandomCodeFuzz, GarbageCodeHasOnlyArchitectedOutcomes) {
  Rng rng(GetParam());
  Machine m;
  const Addr base = 0x1000;
  for (int i = 0; i < 256; i++) {
    m.mem().phys().Write32(base + static_cast<Addr>(i) * 4,
                           static_cast<uint32_t>(rng.Next()));
  }
  const Ptid p = m.threads().PtidOf(0, 0);
  m.threads().InitThread(p, base, /*supervisor=*/false, /*edp=*/0x30000);
  m.Start(p);
  m.RunFor(50000);
  // The machine survives: either the thread faulted (descriptor written,
  // thread disabled), exited, blocked in a bogus mwait, or is still running.
  EXPECT_FALSE(m.halted());
  const ThreadState s = m.threads().thread(p).state();
  EXPECT_TRUE(s == ThreadState::kDisabled || s == ThreadState::kRunnable ||
              s == ThreadState::kWaiting);
  // r0 is still zero no matter what executed.
  EXPECT_EQ(m.threads().thread(p).ReadGpr(0), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCodeFuzz, ::testing::Range(200u, 216u));

}  // namespace
}  // namespace casc
