// Tests for the shared bench reporting API (bench/bench_util.h): flag
// parsing, smoke-iteration selection, and the BENCH_*.json schema the
// bench-smoke tier's validator expects.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "src/sim/json.h"

namespace casc {
namespace {

std::string TempPath(const char* name) { return ::testing::TempDir() + name; }

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(BenchReportTest, ParsesSmokeAndJsonFlags) {
  const std::string path = TempPath("report_flags.json");
  const std::string json_flag = "--json=" + path;
  const char* argv[] = {"bench", "--smoke", json_flag.c_str()};
  BenchReport report("unit", 3, argv);
  ASSERT_TRUE(report.parse_ok());
  EXPECT_TRUE(report.smoke());
  EXPECT_EQ(report.Iters(1000, 10), 10u);
  report.Add("exp", "cfg", "metric", 1.5);
  EXPECT_TRUE(report.Finish());
  std::remove(path.c_str());
}

TEST(BenchReportTest, DefaultsToFullIterationsWithoutSmoke) {
  const char* argv[] = {"bench"};
  BenchReport report("unit", 1, argv);
  ASSERT_TRUE(report.parse_ok());
  EXPECT_FALSE(report.smoke());
  EXPECT_EQ(report.Iters(1000, 10), 1000u);
  // No --json: Finish writes nothing and succeeds.
  EXPECT_TRUE(report.Finish());
}

TEST(BenchReportTest, RejectsMalformedArgs) {
  const char* argv[] = {"bench", "oops"};
  BenchReport report("unit", 2, argv);
  EXPECT_FALSE(report.parse_ok());
  EXPECT_FALSE(report.Finish());
}

TEST(BenchReportTest, WritesSchemaConformingJson) {
  const std::string path = TempPath("report_schema.json");
  const std::string json_flag = "--json=" + path;
  const char* argv[] = {"bench", "--smoke", json_flag.c_str()};
  BenchReport report("e0_unit", 3, argv);
  report.Add("wakeups", "htm, rf tier", "p50_cycles", 20.0);
  report.Add("wakeups", "baseline", "p50_cycles", 2100.0);
  ASSERT_TRUE(report.Finish());

  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(ReadAll(path), &v, &err)) << err;
  std::remove(path.c_str());

  EXPECT_EQ(v.Find("bench")->str_v, "e0_unit");
  EXPECT_TRUE(v.Find("smoke")->bool_v);
  const JsonValue* results = v.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_TRUE(results->is_array());
  ASSERT_EQ(results->arr.size(), 2u);
  const JsonValue& first = results->arr[0];
  EXPECT_EQ(first.Find("experiment")->str_v, "wakeups");
  EXPECT_EQ(first.Find("config")->str_v, "htm, rf tier");
  EXPECT_EQ(first.Find("metric")->str_v, "p50_cycles");
  EXPECT_DOUBLE_EQ(first.Find("value")->num_v, 20.0);
  EXPECT_DOUBLE_EQ(results->arr[1].Find("value")->num_v, 2100.0);
}

TEST(BenchReportTest, FailsOnUnwritablePath) {
  const char* argv[] = {"bench", "--json=/nonexistent-dir/x/y.json"};
  BenchReport report("unit", 2, argv);
  ASSERT_TRUE(report.parse_ok());
  report.Add("exp", "cfg", "metric", 1.0);
  EXPECT_FALSE(report.Finish());
}

}  // namespace
}  // namespace casc
