// Interpreter golden-model tests: every ALU/memory/branch instruction's
// architectural effect is checked against a host-side computation over
// randomized operands (TEST_P sweep per opcode family).
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "src/cpu/machine.h"
#include "src/hwt/tracer.h"
#include "src/isa/isa.h"

namespace casc {
namespace {

// Runs a single R-format ALU instruction with the given operand values and
// returns the destination register content.
uint64_t RunAlu(Opcode op, uint64_t a, uint64_t b) {
  Machine m;
  const Ptid p = m.threads().PtidOf(0, 0);
  Program prog;
  {
    Instruction inst;
    inst.op = op;
    inst.rd = 12;
    inst.rs1 = 10;
    inst.rs2 = 11;
    const uint32_t word = Encode(inst);
    const uint32_t halt = Encode(Instruction{Opcode::kHalt, 0, 0, 0, 0});
    prog.base = 0x1000;
    prog.bytes.resize(8);
    memcpy(prog.bytes.data(), &word, 4);
    memcpy(prog.bytes.data() + 4, &halt, 4);
  }
  m.Load(0, 0, prog, /*supervisor=*/true);
  m.threads().thread(p).WriteGpr(10, a);
  m.threads().thread(p).WriteGpr(11, b);
  m.Start(p);
  m.RunToQuiescence();
  return m.threads().thread(p).ReadGpr(12);
}

struct AluCase {
  Opcode op;
  std::function<uint64_t(uint64_t, uint64_t)> golden;
  const char* name;
};

class AluGoldenTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluGoldenTest, MatchesHostSemantics) {
  const AluCase& c = GetParam();
  Rng rng(static_cast<uint64_t>(c.op) * 17 + 5);
  const uint64_t interesting[] = {0,    1,          2,          0x7fffffffffffffffull,
                                  ~0ull, 0x8000000000000000ull, 63,        64,
                                  0xffffffffull};
  for (uint64_t a : interesting) {
    for (uint64_t b : interesting) {
      if (c.op == Opcode::kDiv && b == 0) {
        continue;  // raises an exception; covered elsewhere
      }
      EXPECT_EQ(RunAlu(c.op, a, b), c.golden(a, b)) << c.name << " a=" << a << " b=" << b;
    }
  }
  for (int i = 0; i < 12; i++) {
    const uint64_t a = rng.Next();
    uint64_t b = rng.Next();
    if (c.op == Opcode::kDiv && b == 0) {
      b = 1;
    }
    EXPECT_EQ(RunAlu(c.op, a, b), c.golden(a, b)) << c.name << " a=" << a << " b=" << b;
  }
}

int64_t S(uint64_t v) { return static_cast<int64_t>(v); }

INSTANTIATE_TEST_SUITE_P(
    Ops, AluGoldenTest,
    ::testing::Values(
        AluCase{Opcode::kAdd, [](uint64_t a, uint64_t b) { return a + b; }, "add"},
        AluCase{Opcode::kSub, [](uint64_t a, uint64_t b) { return a - b; }, "sub"},
        AluCase{Opcode::kMul, [](uint64_t a, uint64_t b) { return a * b; }, "mul"},
        AluCase{Opcode::kDiv,
                [](uint64_t a, uint64_t b) {
                  if (S(a) == INT64_MIN && S(b) == -1) {
                    return a;
                  }
                  return static_cast<uint64_t>(S(a) / S(b));
                },
                "div"},
        AluCase{Opcode::kAnd, [](uint64_t a, uint64_t b) { return a & b; }, "and"},
        AluCase{Opcode::kOr, [](uint64_t a, uint64_t b) { return a | b; }, "or"},
        AluCase{Opcode::kXor, [](uint64_t a, uint64_t b) { return a ^ b; }, "xor"},
        AluCase{Opcode::kSll, [](uint64_t a, uint64_t b) { return a << (b & 63); }, "sll"},
        AluCase{Opcode::kSrl, [](uint64_t a, uint64_t b) { return a >> (b & 63); }, "srl"},
        AluCase{Opcode::kSra,
                [](uint64_t a, uint64_t b) {
                  return static_cast<uint64_t>(S(a) >> (b & 63));
                },
                "sra"},
        AluCase{Opcode::kSlt,
                [](uint64_t a, uint64_t b) { return static_cast<uint64_t>(S(a) < S(b)); },
                "slt"},
        AluCase{Opcode::kSltu,
                [](uint64_t a, uint64_t b) { return static_cast<uint64_t>(a < b); }, "sltu"}),
    [](const auto& info) { return info.param.name; });

// --- immediate forms --------------------------------------------------------

uint64_t RunImm(const std::string& src, uint64_t a0_init = 0) {
  Machine m;
  const Ptid p = m.LoadSource(0, 0, src + "\nhalt\n", /*supervisor=*/true);
  m.threads().thread(p).WriteGpr(10, a0_init);
  m.Start(p);
  m.RunToQuiescence();
  return m.threads().thread(p).ReadGpr(12);  // a2
}

TEST(ImmediateGoldenTest, SignExtensionRules) {
  // addi/slti sign-extend; andi/ori/xori zero-extend (so lui+ori builds
  // 32-bit constants without sign pollution).
  EXPECT_EQ(RunImm("addi a2, a0, -1", 5), 4u);
  EXPECT_EQ(RunImm("addi a2, a0, -32768", 0), static_cast<uint64_t>(-32768));
  EXPECT_EQ(RunImm("ori a2, a0, 0x8000", 0), 0x8000u);
  EXPECT_EQ(RunImm("andi a2, a0, 0xff00", 0x1234), 0x1200u);
  EXPECT_EQ(RunImm("xori a2, a0, 0xffff", 0), 0xffffu);
  EXPECT_EQ(RunImm("slti a2, a0, -5", static_cast<uint64_t>(-6)), 1u);
  EXPECT_EQ(RunImm("slti a2, a0, -5", 0), 0u);
  EXPECT_EQ(RunImm("lui a2, 0xffff", 0), 0xffff0000u);
  EXPECT_EQ(RunImm("srai a2, a0, 4", 0x8000000000000000ull), 0xf800000000000000ull);
  EXPECT_EQ(RunImm("srli a2, a0, 4", 0x8000000000000000ull), 0x0800000000000000ull);
}

TEST(ImmediateGoldenTest, Li64BitBuilds32BitConstants) {
  for (uint64_t v : {0ull, 1ull, 0x7fffull, 0x8000ull, 0xffffull, 0x10000ull, 0xdeadbeefull,
                     0xffffffffull}) {
    Machine m;
    const Ptid p =
        m.LoadSource(0, 0, "li a2, " + std::to_string(v) + "\nhalt\n", /*supervisor=*/true);
    m.Start(p);
    m.RunToQuiescence();
    EXPECT_EQ(m.threads().thread(p).ReadGpr(12), v);
  }
}

// --- memory access sizes -----------------------------------------------------

TEST(MemoryGoldenTest, LoadStoreSizesZeroExtend) {
  Machine m;
  const Ptid p = m.LoadSource(0, 0,
                              "  li a1, 0x8000\n"
                              "  li a0, 0xffff\n"
                              "  lui a0, 0x89ab\n"
                              "  ori a0, a0, 0xcdef\n"  // a0 = 0x89abcdef
                              "  sd a0, 0(a1)\n"
                              "  lb a2, 0(a1)\n"
                              "  lh a3, 0(a1)\n"
                              "  lw a4, 0(a1)\n"
                              "  ld a5, 0(a1)\n"
                              "  sb a0, 16(a1)\n"
                              "  ld a6, 16(a1)\n"
                              "  halt\n",
                              true);
  m.Start(p);
  m.RunToQuiescence();
  auto& t = m.threads().thread(p);
  EXPECT_EQ(t.ReadGpr(12), 0xefu);
  EXPECT_EQ(t.ReadGpr(13), 0xcdefu);
  EXPECT_EQ(t.ReadGpr(14), 0x89abcdefu);
  EXPECT_EQ(t.ReadGpr(15), 0x89abcdefu);
  EXPECT_EQ(t.ReadGpr(16), 0xefu);
}

// --- control flow -------------------------------------------------------------

TEST(BranchGoldenTest, AllComparisonsBothDirections) {
  struct Case {
    const char* op;
    uint64_t a;
    uint64_t b;
    bool taken;
  };
  const Case cases[] = {
      {"beq", 5, 5, true},   {"beq", 5, 6, false},
      {"bne", 5, 6, true},   {"bne", 5, 5, false},
      {"blt", static_cast<uint64_t>(-1), 0, true},  {"blt", 0, static_cast<uint64_t>(-1), false},
      {"bge", 0, static_cast<uint64_t>(-1), true},  {"bge", static_cast<uint64_t>(-1), 0, false},
      {"bltu", 0, static_cast<uint64_t>(-1), true}, {"bltu", static_cast<uint64_t>(-1), 0, false},
      {"bgeu", static_cast<uint64_t>(-1), 0, true}, {"bgeu", 0, static_cast<uint64_t>(-1), false},
  };
  for (const Case& c : cases) {
    Machine m;
    const Ptid p = m.LoadSource(0, 0,
                                std::string("  ") + c.op +
                                    " a0, a1, yes\n"
                                    "  li a2, 1\n"
                                    "  halt\n"
                                    "yes:\n"
                                    "  li a2, 2\n"
                                    "  halt\n",
                                true);
    m.threads().thread(p).WriteGpr(10, c.a);
    m.threads().thread(p).WriteGpr(11, c.b);
    m.Start(p);
    m.RunToQuiescence();
    EXPECT_EQ(m.threads().thread(p).ReadGpr(12), c.taken ? 2u : 1u)
        << c.op << " " << c.a << "," << c.b;
  }
}

TEST(BranchGoldenTest, CallLinksAndReturns) {
  Machine m;
  const Ptid p = m.LoadSource(0, 0,
                              "  li a0, 1\n"
                              "  call fn\n"
                              "  addi a0, a0, 100\n"  // runs after ret
                              "  halt\n"
                              "fn:\n"
                              "  addi a0, a0, 10\n"
                              "  ret\n",
                              true);
  m.Start(p);
  m.RunToQuiescence();
  EXPECT_EQ(m.threads().thread(p).ReadGpr(10), 111u);
}

TEST(BranchGoldenTest, JalrComputedTarget) {
  Machine m;
  const Ptid p = m.LoadSource(0, 0,
                              "  la a1, target\n"
                              "  jalr a3, a1, 0\n"
                              "  halt\n"
                              "target:\n"
                              "  li a2, 77\n"
                              "  halt\n",
                              true);
  m.Start(p);
  m.RunToQuiescence();
  EXPECT_EQ(m.threads().thread(p).ReadGpr(12), 77u);
  // Link register holds the fall-through address.
  EXPECT_NE(m.threads().thread(p).ReadGpr(13), 0u);
}

TEST(AmoaddGoldenTest, ReturnsOldValueAndAccumulates) {
  Machine m;
  const Ptid p = m.LoadSource(0, 0,
                              "  li a1, 0x8000\n"
                              "  li a0, 100\n"
                              "  sd a0, 0(a1)\n"
                              "  li a2, 5\n"
                              "  amoadd a3, a1, a2\n"  // a3 = 100, mem = 105
                              "  amoadd a4, a1, a2\n"  // a4 = 105, mem = 110
                              "  halt\n",
                              true);
  m.Start(p);
  m.RunToQuiescence();
  EXPECT_EQ(m.threads().thread(p).ReadGpr(13), 100u);
  EXPECT_EQ(m.threads().thread(p).ReadGpr(14), 105u);
  EXPECT_EQ(m.mem().phys().Read64(0x8000), 110u);
}

TEST(InterpGoldenTest, R0IsHardwiredZero) {
  Machine m;
  const Ptid p = m.LoadSource(0, 0,
                              "  li a0, 5\n"
                              "  add r0, a0, a0\n"  // write to r0 is dropped
                              "  add a2, r0, r0\n"
                              "  halt\n",
                              true);
  m.Start(p);
  m.RunToQuiescence();
  EXPECT_EQ(m.threads().thread(p).ReadGpr(0), 0u);
  EXPECT_EQ(m.threads().thread(p).ReadGpr(12), 0u);
}

// --- predecoded I-cache -------------------------------------------------------

// The predecode cache is a host-side speedup only: with it on or off, the
// same program must retire the same instructions at the same ticks and leave
// identical architectural state.
TEST(PredecodeTest, TraceEquivalentToPerFetchDecode) {
  struct TraceResult {
    uint64_t retired;
    Tick end;
    uint64_t a0;
    std::vector<std::tuple<Tick, Ptid, int, int, int>> events;
  };
  auto run = [](bool predecode) {
    Machine m;
    ThreadTracer tracer;
    m.threads().SetTracer(&tracer);
    m.SetPredecodeEnabled(predecode);
    const Ptid p = m.LoadSource(0, 0,
                                "  li a0, 0\n"
                                "  li a1, 200\n"
                                "  li a2, 0x8000\n"
                                "loop:\n"
                                "  add a0, a0, a1\n"
                                "  sd a0, 0(a2)\n"
                                "  ld a3, 0(a2)\n"
                                "  addi a1, a1, -1\n"
                                "  bne a1, r0, loop\n"
                                "  halt\n",
                                /*supervisor=*/true);
    m.Start(p);
    m.RunToQuiescence();
    TraceResult r;
    r.retired = m.core(0).instructions_retired();
    r.end = m.sim().now();
    r.a0 = m.threads().thread(p).ReadGpr(10);
    for (const ThreadTracer::Event& e : tracer.events()) {
      r.events.push_back({e.tick, e.ptid, static_cast<int>(e.from), static_cast<int>(e.to),
                          static_cast<int>(e.cause)});
    }
    if (predecode) {
      EXPECT_GT(m.core(0).predecode_hits(), 0u);
    } else {
      EXPECT_EQ(m.core(0).predecode_hits(), 0u);
      EXPECT_EQ(m.core(0).predecode_misses(), 0u);
    }
    return r;
  };
  const TraceResult with = run(true);
  const TraceResult without = run(false);
  EXPECT_GT(with.retired, 1000u);  // the loop actually ran
  EXPECT_EQ(with.retired, without.retired);
  EXPECT_EQ(with.end, without.end);
  EXPECT_EQ(with.a0, without.a0);
  EXPECT_EQ(with.events, without.events);
}

TEST(PredecodeTest, SelfModifyingCodeObservedAfterStore) {
  // Overwriting an already-predecoded instruction word must invalidate the
  // cached line: the rewritten instruction executes, not the stale decode.
  for (bool predecode : {true, false}) {
    Machine m;
    m.SetPredecodeEnabled(predecode);
    const Ptid p = m.LoadSource(0, 0,
                                "  la a1, target\n"
                                "  sw a2, 0(a1)\n"
                                "target:\n"
                                "  addi a0, r0, 55\n"
                                "  halt\n",
                                /*supervisor=*/true);
    // a2 holds the replacement encoding "addi a0, r0, 77".
    m.threads().thread(p).WriteGpr(12, Encode(Instruction{Opcode::kAddi, 10, 0, 0, 77}));
    m.Start(p);
    m.RunToQuiescence();
    EXPECT_EQ(m.threads().thread(p).ReadGpr(10), 77u) << "predecode=" << predecode;
  }
}

// --- direct-threaded dispatch + superinstruction fusion (§4j) ---------------

// Fusion and threaded dispatch are host-speed knobs only. All four engine
// combinations must produce identical retire counts, end ticks, architectural
// state, thread-state trace events, and the byte-identical stats JSON.
TEST(FusionTest, TraceEquivalentAcrossEngineCombos) {
  struct Result {
    uint64_t retired;
    Tick end;
    uint64_t a0;
    std::string stats;
    std::vector<std::tuple<Tick, Ptid, int, int, int>> events;
    uint64_t fused_total;
    uint64_t fused_load_alu;
    uint64_t fused_cmp_branch;
  };
  auto run = [](bool fusion, bool threaded) {
    MachineConfig cfg;
    cfg.fusion = fusion;
    cfg.threaded_dispatch = threaded;
    Machine m(cfg);
    ThreadTracer tracer;
    m.threads().SetTracer(&tracer);
    const Ptid p = m.LoadSource(0, 0,
                                "  li a0, 0\n"
                                "  li a1, 200\n"
                                "  li a2, 0x8000\n"
                                "loop:\n"
                                "  add a0, a0, a1\n"
                                "  sd a0, 0(a2)\n"
                                "  ld a3, 0(a2)\n"
                                "  addi a1, a1, -1\n"
                                "  bne a1, r0, loop\n"
                                "  halt\n",
                                /*supervisor=*/true);
    m.Start(p);
    m.RunToQuiescence();
    Result r;
    r.retired = m.core(0).instructions_retired();
    r.end = m.sim().now();
    r.a0 = m.threads().thread(p).ReadGpr(10);
    std::ostringstream os;
    m.sim().stats().DumpJson(os);
    r.stats = os.str();
    for (const ThreadTracer::Event& e : tracer.events()) {
      r.events.push_back({e.tick, e.ptid, static_cast<int>(e.from), static_cast<int>(e.to),
                          static_cast<int>(e.cause)});
    }
    r.fused_total = m.core(0).fused_pairs_total();
    r.fused_load_alu = m.core(0).fused_pairs(FusedOp::kLoadAlu);
    r.fused_cmp_branch = m.core(0).fused_pairs(FusedOp::kCmpBranch);
    return r;
  };
  const Result base = run(/*fusion=*/false, /*threaded=*/false);  // legacy-exact engine
  EXPECT_GT(base.retired, 1000u);
  EXPECT_EQ(base.fused_total, 0u);
  for (bool fusion : {false, true}) {
    for (bool threaded : {false, true}) {
      if (!fusion && !threaded) {
        continue;
      }
      SCOPED_TRACE(::testing::Message() << "fusion=" << fusion << " threaded=" << threaded);
      const Result r = run(fusion, threaded);
      EXPECT_EQ(r.retired, base.retired);
      EXPECT_EQ(r.end, base.end);
      EXPECT_EQ(r.a0, base.a0);
      EXPECT_EQ(r.stats, base.stats);
      EXPECT_EQ(r.events, base.events);
      if (fusion) {
        // The loop body actually exercises the patterns: ld+addi pairs as
        // kLoadAlu each iteration (its addi tail then can't also fire as a
        // kCmpBranch head, so the fused-pair mix is load_alu-dominated).
        EXPECT_GT(r.fused_total, 100u);
        EXPECT_GT(r.fused_load_alu, 100u);
      } else {
        EXPECT_EQ(r.fused_total, 0u);
      }
    }
  }
}

// Regression for the span rule: a fused pair whose head sits in the last
// slot of a predecode line caches a copy of the *next* line's first word as
// its tail. A store to that next line must drop the previous line's entry
// too, or the head keeps replaying the stale tail. Before the fix, this test
// fell through to the old branch target and read a4 == 55.
TEST(FusionTest, SpanningPairTailWriteInvalidatesHeadLine) {
  // Hand-placed so the cmp+branch head lands in slot 15 of the line at
  // 0x1000 and its branch tail is word 0 of the line at 0x1040:
  //   idx0   addi a1, r0, 0x1040   ; a1 = tail word address
  //   idx1   addi a3, r0, 1        ; first-pass flag
  //   idx2   beq  r0, r0, ->idx15  ; jump to the head
  //   idx3   sw   a2, 0(a1)        ; second pass: overwrite the tail word
  //   idx4   addi a3, r0, 0
  //   idx5   beq  r0, r0, ->idx15
  //   idx6..14  nop
  //   idx15  addi a5, a5, 1        ; HEAD (fusable ALU, slot 15)
  //   idx16  bne  a3, r0, ->idx3   ; TAIL (word 0 of the next line)
  //   idx17  addi a4, r0, 55       ; stale-tail fall-through
  //   idx18  halt
  //   idx19  addi a4, r0, 99       ; target of the rewritten tail
  //   idx20  halt
  auto branch_imm = [](int from_idx, int to_idx) {
    return to_idx - from_idx - 1;  // target = pc + 4 + imm*4
  };
  std::vector<uint32_t> words = {
      Encode(Instruction{Opcode::kAddi, 11, 0, 0, 0x1040}),
      Encode(Instruction{Opcode::kAddi, 13, 0, 0, 1}),
      Encode(Instruction{Opcode::kBeq, 0, 0, 0, branch_imm(2, 15)}),
      Encode(Instruction{Opcode::kSw, 12, 11, 0, 0}),
      Encode(Instruction{Opcode::kAddi, 13, 0, 0, 0}),
      Encode(Instruction{Opcode::kBeq, 0, 0, 0, branch_imm(5, 15)}),
  };
  while (words.size() < 15) {
    words.push_back(Encode(Instruction{Opcode::kNop, 0, 0, 0, 0}));
  }
  words.push_back(Encode(Instruction{Opcode::kAddi, 15, 15, 0, 1}));          // idx15
  words.push_back(Encode(Instruction{Opcode::kBne, 13, 0, 0, branch_imm(16, 3)}));  // idx16
  words.push_back(Encode(Instruction{Opcode::kAddi, 14, 0, 0, 55}));          // idx17
  words.push_back(Encode(Instruction{Opcode::kHalt, 0, 0, 0, 0}));            // idx18
  words.push_back(Encode(Instruction{Opcode::kAddi, 14, 0, 0, 99}));          // idx19
  words.push_back(Encode(Instruction{Opcode::kHalt, 0, 0, 0, 0}));            // idx20
  for (bool fusion : {true, false}) {
    SCOPED_TRACE(::testing::Message() << "fusion=" << fusion);
    MachineConfig cfg;
    cfg.fusion = fusion;
    Machine m(cfg);
    Program prog;
    prog.base = 0x1000;  // 64-aligned: idx15 is the line's last slot
    prog.bytes.resize(words.size() * 4);
    memcpy(prog.bytes.data(), words.data(), prog.bytes.size());
    m.Load(0, 0, prog, /*supervisor=*/true);
    const Ptid p = m.threads().PtidOf(0, 0);
    // a2 holds the replacement tail: "beq r0, r0, ->idx19".
    m.threads().thread(p).WriteGpr(12, Encode(Instruction{Opcode::kBeq, 0, 0, 0, 2}));
    m.Start(p);
    m.RunToQuiescence();
    EXPECT_EQ(m.threads().thread(p).ReadGpr(14), 99u);  // not the stale 55
    EXPECT_EQ(m.threads().thread(p).ReadGpr(15), 2u);   // head ran twice
    if (fusion) {
      EXPECT_GT(m.core(0).fused_pairs(FusedOp::kCmpBranch), 0u);
    }
  }
}

// A fault on the head of a fused pair must de-fuse: the exception fires with
// the head's pc, no continuation is staged, and the run is tick- and
// stats-identical to the unfused engine.
TEST(FusionTest, MidSequenceFaultDeFusesIdentically) {
  struct Result {
    Tick end;
    bool halted;
    int why;
    uint64_t a3, a4;
    std::string stats;
  };
  auto run = [](bool fusion) {
    MachineConfig cfg;
    cfg.fusion = fusion;
    Machine m(cfg);
    m.mem().AddSupervisorOnlyRange(0x20000, 0x1000);
    // User mode, no handler installed: ld faults (kPageFault) and the
    // machine halts. ld+add is a kLoadAlu pair when fusion is on.
    const Ptid p = m.LoadSource(0, 0,
                                "  lui a2, 2\n"       // a2 = 0x20000
                                "  ld a3, 0(a2)\n"    // faults: supervisor-only
                                "  add a4, a3, a3\n"  // fused tail, must not run
                                "  halt\n",
                                /*supervisor=*/false);
    m.Start(p);
    m.RunToQuiescence();
    Result r;
    r.end = m.sim().now();
    r.halted = m.halted();
    r.why = static_cast<int>(m.halt_why());
    r.a3 = m.threads().thread(p).ReadGpr(13);
    r.a4 = m.threads().thread(p).ReadGpr(14);
    std::ostringstream os;
    m.sim().stats().DumpJson(os);
    r.stats = os.str();
    return r;
  };
  const Result fused = run(true);
  const Result plain = run(false);
  EXPECT_TRUE(fused.halted);
  EXPECT_EQ(fused.a3, 0u);  // load never completed
  EXPECT_EQ(fused.a4, 0u);  // tail never executed
  EXPECT_EQ(fused.end, plain.end);
  EXPECT_EQ(fused.halted, plain.halted);
  EXPECT_EQ(fused.why, plain.why);
  EXPECT_EQ(fused.a3, plain.a3);
  EXPECT_EQ(fused.a4, plain.a4);
  EXPECT_EQ(fused.stats, plain.stats);
}

}  // namespace
}  // namespace casc
