// Runtime tests: exception-less syscalls, direct (XPC-style) IPC, the KV and
// file microkernel services, the untrusted hypervisor, and thread-per-request
// RPC nodes over the fabric.
#include <gtest/gtest.h>

#include "src/cpu/machine.h"
#include "src/dev/block_dev.h"
#include "src/dev/fabric.h"
#include "src/dev/nic.h"
#include "src/runtime/channel.h"
#include "src/runtime/hash_table.h"
#include "src/runtime/hypervisor.h"
#include "src/runtime/rpc.h"
#include "src/runtime/services.h"
#include "src/runtime/syscall_layer.h"

namespace casc {
namespace {

constexpr Addr kChannelBase = 0x00400000;
constexpr Addr kTableBase = 0x00500000;

TEST(SubtaskTest, NestedCoroutinesCompose) {
  Machine m;
  std::vector<uint64_t> log;
  const Ptid p = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        auto sub = [](GuestContext& c, uint64_t base, std::vector<uint64_t>* out) -> GuestTask {
          co_await c.Compute(5);
          out->push_back(base + 1);
          co_await c.Compute(5);
          out->push_back(base + 2);
        };
        log.push_back(100);
        co_await ctx.Call(sub(ctx, 200, &log));
        log.push_back(101);
        co_await ctx.Call(sub(ctx, 300, &log));
        log.push_back(102);
      },
      true);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(log, (std::vector<uint64_t>{100, 201, 202, 101, 301, 302, 102}));
}

TEST(SubtaskTest, DeeplyNestedSubtasks) {
  Machine m;
  uint64_t result = 0;
  std::function<GuestTask(GuestContext&, int, uint64_t*)> recurse =
      [&recurse](GuestContext& c, int depth, uint64_t* acc) -> GuestTask {
    co_await c.Compute(1);
    *acc += 1;
    if (depth > 0) {
      co_await c.Call(recurse(c, depth - 1, acc));
    }
  };
  const Ptid p = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask { co_await ctx.Call(recurse(ctx, 9, &result)); },
      true);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(result, 10u);
}

TEST(SyscallLayerTest, ExceptionLessSyscallRoundTrip) {
  Machine m;
  const Channel ch{kChannelBase};
  std::vector<uint64_t> served;
  const Ptid server = m.BindNative(
      0, 0,
      MakeSyscallServer(ch,
                        [&](GuestContext& c, const SyscallRequest& req,
                            uint64_t* ret) -> GuestTask {
                          co_await c.Compute(50);
                          served.push_back(req.nr);
                          *ret = req.a0 + req.a1;
                        }),
      /*supervisor=*/true);
  uint64_t result = 0;
  Tick done_at = 0;
  const Ptid app = m.BindNative(
      0, 1,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(SyscallCall(ctx, ch, {.nr = 7, .a0 = 40, .a1 = 2}, &result));
        done_at = co_await ctx.ReadCsr(Csr::kCycle);
      },
      /*supervisor=*/false);
  m.Start(server);
  m.Start(app);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(result, 42u);
  EXPECT_EQ(served, (std::vector<uint64_t>{7}));
  // The whole round trip is fast: no mode switches, no scheduler.
  EXPECT_LT(done_at, 3000u);
  // The server parked itself again.
  EXPECT_EQ(m.threads().thread(server).state(), ThreadState::kWaiting);
}

TEST(SyscallLayerTest, ManySequentialSyscalls) {
  Machine m;
  const Channel ch{kChannelBase};
  const Ptid server = m.BindNative(
      0, 0,
      MakeSyscallServer(
          ch,
          [](GuestContext& c, const SyscallRequest& req, uint64_t* ret) -> GuestTask {
            co_await c.Compute(20);
            *ret = req.a0 * 2;
          }),
      true);
  uint64_t sum = 0;
  const Ptid app = m.BindNative(
      0, 1,
      [&](GuestContext& ctx) -> GuestTask {
        for (uint64_t i = 1; i <= 20; i++) {
          uint64_t ret = 0;
          co_await ctx.Call(SyscallCall(ctx, ch, {.nr = 1, .a0 = i}, &ret));
          sum += ret;
        }
      },
      false);
  m.Start(server);
  m.Start(app);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(sum, 2 * (20 * 21 / 2));
}

TEST(SyscallLayerTest, DirectIpcCalleeStart) {
  Machine m;
  const Channel ch{kChannelBase};
  // Callee on thread 3; caller is supervisor so vtid 3 resolves by identity.
  const Ptid callee = m.BindNative(
      0, 3,
      MakeIpcCallee(ch,
                    [](GuestContext& c, const SyscallRequest& req, uint64_t* ret) -> GuestTask {
                      co_await c.Compute(30);
                      *ret = req.a0 + 1000;
                    }),
      true);
  (void)callee;
  uint64_t r1 = 0;
  uint64_t r2 = 0;
  const Ptid caller = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(IpcCall(ctx, ch, 3, {.nr = 1, .a0 = 1}, &r1));
        co_await ctx.Call(IpcCall(ctx, ch, 3, {.nr = 1, .a0 = 2}, &r2));
      },
      true);
  m.Start(caller);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(r1, 1001u);
  EXPECT_EQ(r2, 1002u);
  EXPECT_EQ(m.threads().thread(callee).state(), ThreadState::kDisabled);
}

TEST(HashTableTest, HostAndSimViewsAgree) {
  Machine m;
  const HashTableRef table{kTableBase, 256};
  table.HostPut(m.mem().phys(), 42, 4242);
  table.HostPut(m.mem().phys(), 1000, 9);
  uint64_t v1 = 0;
  uint64_t v2 = 0;
  uint64_t v3 = 1;
  bool f1 = false;
  bool f2 = false;
  bool f3 = true;
  const Ptid p = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(HashGet(ctx, table, 42, &v1, &f1));
        co_await ctx.Call(HashGet(ctx, table, 1000, &v2, &f2));
        co_await ctx.Call(HashGet(ctx, table, 777, &v3, &f3));
        bool ok = false;
        co_await ctx.Call(HashPut(ctx, table, 777, 111, &ok));
        co_await ctx.Call(HashGet(ctx, table, 777, &v3, &f3));
      },
      true);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_TRUE(f1);
  EXPECT_EQ(v1, 4242u);
  EXPECT_TRUE(f2);
  EXPECT_EQ(v2, 9u);
  EXPECT_TRUE(f3);
  EXPECT_EQ(v3, 111u);
  EXPECT_EQ(table.HostGet(m.mem().phys(), 777), 111u);
}

TEST(ServicesTest, KvServiceOverSyscallChannel) {
  Machine m;
  const Channel ch{kChannelBase};
  const HashTableRef table{kTableBase, 1024};
  const Ptid server =
      m.BindNative(0, 0, MakeSyscallServer(ch, MakeKvHandler(table)), /*supervisor=*/true);
  uint64_t got = 0;
  uint64_t put_ok = 0;
  const Ptid app = m.BindNative(
      0, 1,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(SyscallCall(ctx, ch, {.nr = kKvPut, .a0 = 5, .a1 = 55}, &put_ok));
        co_await ctx.Call(SyscallCall(ctx, ch, {.nr = kKvGet, .a0 = 5}, &got));
      },
      false);
  m.Start(server);
  m.Start(app);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(put_ok, 1u);
  EXPECT_EQ(got, 55u);
}

TEST(ServicesTest, FileServiceBlockingReadNoPolling) {
  Machine m;
  BlockDevice dev(m.sim(), m.mem(), BlockConfig{});
  dev.storage().Write64(7 * 512, 0xabcdef99u);

  BlockDriver drv;
  drv.mmio_base = BlockConfig{}.mmio_base;
  drv.sq_base = 0x00600000;
  drv.sq_size = 64;
  drv.cq_tail = 0x00601000;
  drv.state = 0x00601040;
  // Point the device at the rings (host-side driver init).
  m.mem().Write(0, drv.mmio_base + kBlkSqBase, 8, drv.sq_base);
  m.mem().Write(0, drv.mmio_base + kBlkSqSize, 8, drv.sq_size);
  m.mem().Write(0, drv.mmio_base + kBlkCqTailAddr, 8, drv.cq_tail);

  const Channel ch{kChannelBase};
  const Ptid server =
      m.BindNative(0, 0, MakeSyscallServer(ch, MakeFileHandler(drv)), /*supervisor=*/true);
  uint64_t first_word = 0;
  const Ptid app = m.BindNative(
      0, 1,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(
            SyscallCall(ctx, ch, {.nr = kFsRead, .a0 = 7, .a1 = 512, .a2 = 0x00700000},
                        &first_word));
      },
      false);
  m.Start(server);
  m.Start(app);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(first_word, 0xabcdef99u);
  EXPECT_EQ(m.mem().phys().Read64(0x00700000), 0xabcdef99u);
  // The server thread blocked during the ~8 us device latency (no polling):
  // total time is dominated by the device, not by spinning.
  EXPECT_GE(m.sim().now(), BlockConfig{}.read_latency);
}

TEST(HypervisorTest, UntrustedHypervisorEmulatesPrivilegedWrites) {
  Machine m;
  Hypervisor hyp(m, 0, /*hyp_local=*/0, HypervisorConfig{});
  // Guest: writes two privileged CSRs from user mode, then reports and halts.
  const Ptid guest = m.LoadSource(0, 1,
                                  "  li a0, 9\n"
                                  "  csrwr prio, a0\n"   // VM-exit #1
                                  "  li a0, 0x123\n"
                                  "  csrwr tdtr, a0\n"   // VM-exit #2
                                  "  li a0, 1\n"
                                  "  hcall 1\n"
                                  "  halt\n",
                                  /*supervisor=*/false, "", 0, 0x2000);
  hyp.AddGuest(1);
  hyp.Install();
  std::vector<uint64_t> log;
  m.SetHcallHandler([&](Core&, HwThread& t, int64_t) { log.push_back(t.ReadGpr(10)); });
  m.Start(hyp.hyp_ptid());
  m.RunFor(100);
  m.Start(guest);
  m.RunFor(200000);
  EXPECT_EQ(hyp.exits_handled(), 2u);
  EXPECT_EQ(hyp.VirtualCsr(0, Csr::kPrio), 9u);
  EXPECT_EQ(hyp.VirtualCsr(0, Csr::kTdtr), 0x123u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 1u);  // guest ran to completion after both exits
  EXPECT_FALSE(m.halted());
}

TEST(HypervisorTest, NonEmulatableFaultKillsGuest) {
  Machine m;
  Hypervisor hyp(m, 0, 0, HypervisorConfig{});
  const Ptid guest = m.LoadSource(0, 1,
                                  "  li a1, 3\n"
                                  "  li a2, 0\n"
                                  "  div a0, a1, a2\n"
                                  "  halt\n",
                                  false, "", 0, 0x2000);
  hyp.AddGuest(1);
  hyp.Install();
  m.Start(hyp.hyp_ptid());
  m.RunFor(100);
  m.Start(guest);
  m.RunFor(100000);
  EXPECT_EQ(hyp.guests_killed(), 1u);
  EXPECT_EQ(m.threads().thread(guest).state(), ThreadState::kDisabled);
  EXPECT_FALSE(m.halted());
}

TEST(HypervisorTest, TwoGuestsShareOneHypervisor) {
  Machine m;
  Hypervisor hyp(m, 0, 0, HypervisorConfig{});
  const char* src =
      "  li a0, 5\n"
      "  csrwr prio, a0\n"
      "  hcall 0\n";
  const Ptid g1 = m.LoadSource(0, 1, src, false, "", 0, 0x2000);
  const Ptid g2 = m.LoadSource(0, 2, src, false, "", 0, 0x3000);
  hyp.AddGuest(1);
  hyp.AddGuest(2);
  hyp.Install();
  m.Start(hyp.hyp_ptid());
  m.RunFor(100);
  m.Start(g1);
  m.Start(g2);
  m.RunFor(200000);
  EXPECT_EQ(hyp.exits_handled(), 2u);
  EXPECT_EQ(hyp.VirtualCsr(0, Csr::kPrio), 5u);
  EXPECT_EQ(hyp.VirtualCsr(1, Csr::kPrio), 5u);
}

class RpcTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kServerNode = 1;
  static constexpr uint64_t kClientNode = 9;

  RpcTest() {
    MachineConfig cfg;
    cfg.hwt.threads_per_core = 64;
    machine_ = std::make_unique<Machine>(cfg);
    server_nic_ = std::make_unique<Nic>(machine_->sim(), machine_->mem(), NicConfig{});
    NicConfig client_cfg;
    client_cfg.mmio_base = 0xf0100000;
    client_nic_ = std::make_unique<Nic>(machine_->sim(), machine_->mem(), client_cfg);
    fabric_ = std::make_unique<Fabric>(machine_->sim(), FabricConfig{});
    fabric_->Attach(kServerNode, server_nic_.get());
    fabric_->Attach(kClientNode, client_nic_.get());
    // Client NIC: host-managed rings; auto-advance the consumed index.
    SetupNicRings(machine_->mem(), *client_nic_, 0x02000000);
    client_nic_->SetRxObserver([this](const std::vector<uint8_t>& frame) {
      uint64_t req_id = 0;
      memcpy(&req_id, frame.data() + RpcFrame::kReqIdOff, 8);
      responses_.push_back({req_id, machine_->sim().now()});
      machine_->mem().Write(0, client_nic_->config().mmio_base + kNicRxHead, 8,
                            ++client_consumed_);
    });
  }

  void RunNode(RpcMode mode, uint32_t workers, RingConfig ring_cfg = RingConfig{}) {
    node_ = std::make_unique<RpcNode>(*machine_, 0, kServerNode, server_nic_.get(), 0x03000000,
                                      workers, mode, std::move(ring_cfg));
    node_->Install();
    machine_->RunFor(1000);  // let threads park
  }

  void SendRequest(uint64_t req_id, uint64_t service_cycles) {
    fabric_->InjectFrom(kClientNode,
                        RpcFrame::Make(kServerNode, kClientNode, req_id, service_cycles));
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Nic> server_nic_;
  std::unique_ptr<Nic> client_nic_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<RpcNode> node_;
  std::vector<std::pair<uint64_t, Tick>> responses_;
  uint64_t client_consumed_ = 0;
};

TEST_F(RpcTest, ThreadPerRequestServesAndResponds) {
  RunNode(RpcMode::kThreadPerRequest, 8);
  for (uint64_t i = 1; i <= 5; i++) {
    SendRequest(i, 2000);
  }
  machine_->RunFor(200000);
  ASSERT_EQ(responses_.size(), 5u);
  EXPECT_EQ(node_->served(), 5u);
  std::vector<uint64_t> ids;
  for (auto& [id, t] : responses_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

TEST_F(RpcTest, EventLoopServesAndResponds) {
  RunNode(RpcMode::kEventLoop, 0);
  for (uint64_t i = 1; i <= 5; i++) {
    SendRequest(i, 2000);
  }
  machine_->RunFor(300000);
  ASSERT_EQ(responses_.size(), 5u);
  EXPECT_EQ(node_->served(), 5u);
}

TEST_F(RpcTest, ThreadPerRequestOverlapsLongRequests) {
  // One 50k-cycle request followed by four short ones: with 8 workers the
  // short ones must not wait behind the long one (PS-like behavior).
  RunNode(RpcMode::kThreadPerRequest, 8);
  SendRequest(100, 50000);
  machine_->RunFor(2000);
  for (uint64_t i = 1; i <= 4; i++) {
    SendRequest(i, 1000);
  }
  machine_->RunFor(400000);
  ASSERT_EQ(responses_.size(), 5u);
  Tick long_done = 0;
  Tick max_short = 0;
  for (auto& [id, t] : responses_) {
    if (id == 100) {
      long_done = t;
    } else {
      max_short = std::max(max_short, t);
    }
  }
  EXPECT_LT(max_short, long_done);
}

TEST_F(RpcTest, EventLoopHeadOfLineBlocks) {
  // Same scenario on the event loop: the short requests are stuck behind the
  // long one (the paper's motivation for thread-per-request).
  RunNode(RpcMode::kEventLoop, 0);
  SendRequest(100, 50000);
  machine_->RunFor(2000);
  for (uint64_t i = 1; i <= 4; i++) {
    SendRequest(i, 1000);
  }
  machine_->RunFor(400000);
  ASSERT_EQ(responses_.size(), 5u);
  Tick long_done = 0;
  Tick min_short = UINT64_MAX;
  for (auto& [id, t] : responses_) {
    if (id == 100) {
      long_done = t;
    } else {
      min_short = std::min(min_short, t);
    }
  }
  EXPECT_GT(min_short, long_done);
}

TEST_F(RpcTest, RingModeServesAndResponds) {
  // kRing: RX frames become ring descriptors, a worker pool drains them, the
  // dispatcher transmits staged responses as completions post.
  RunNode(RpcMode::kRing, 3);
  for (uint64_t i = 1; i <= 8; i++) {
    SendRequest(i, 1500);
  }
  machine_->RunFor(400000);
  ASSERT_EQ(responses_.size(), 8u);
  EXPECT_EQ(node_->served(), 8u);
  std::vector<uint64_t> ids;
  for (auto& [id, t] : responses_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST_F(RpcTest, RingModeOverlapsLongRequests) {
  // The worker pool gives kRing the same PS-like overlap as
  // thread-per-request — without a dispatcher hop per request.
  RunNode(RpcMode::kRing, 4);
  SendRequest(100, 50000);
  machine_->RunFor(2000);
  for (uint64_t i = 1; i <= 3; i++) {
    SendRequest(i, 1000);
  }
  machine_->RunFor(500000);
  ASSERT_EQ(responses_.size(), 4u);
  Tick long_done = 0;
  Tick max_short = 0;
  for (auto& [id, t] : responses_) {
    if (id == 100) {
      long_done = t;
    } else {
      max_short = std::max(max_short, t);
    }
  }
  EXPECT_LT(max_short, long_done);
}

TEST_F(RpcTest, RingModeSurvivesBurstBeyondRingDepth) {
  // Deadlock regression: a burst far larger than the ring depth lands in one
  // rx_tail snapshot. The dispatcher is the ring's only completion consumer,
  // so it must drain completions while submitting; a dispatcher that pushed
  // the whole snapshot first would wedge — every worker blocked on the
  // completion overwrite guard waiting for consumed tags only the dispatcher
  // writes, the dispatcher blocked in RingSubmit's backpressure wait for a
  // taken tag only a worker can write. A tiny ring makes the old circular
  // wait reachable with a small burst (> ~2 * entries + workers).
  RingConfig cfg;
  cfg.entries = 4;
  RunNode(RpcMode::kRing, 3, cfg);
  constexpr uint64_t kBurst = 24;
  for (uint64_t i = 1; i <= kBurst; i++) {
    SendRequest(i, 1500);
  }
  machine_->RunFor(2000000);
  ASSERT_EQ(responses_.size(), kBurst) << "dispatcher deadlocked under burst";
  EXPECT_EQ(node_->served(), kBurst);
  std::vector<uint64_t> ids;
  for (auto& [id, t] : responses_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (uint64_t i = 0; i < kBurst; i++) {
    EXPECT_EQ(ids[i], i + 1);
  }
}

TEST(ServicesTest, RingProxyChainsToChannelService) {
  // app -> ring proxy workers (policy) -> KV service behind a channel: the
  // ring transport composes with the existing per-call layers.
  Machine m;
  const Channel svc_ch{0x00420000};
  const HashTableRef table{kTableBase, 256};
  table.HostPut(m.mem().phys(), 7, 77);
  const Ptid service =
      m.BindNative(0, 3, MakeSyscallServer(svc_ch, MakeKvHandler(table)), true);
  RingConfig cfg;
  cfg.entries = 8;
  cfg.num_workers = 1;  // one proxy worker: the upstream channel is per-call
  cfg.name = "proxy";
  RingServer proxy(m, 0, 1, 0x00400000, cfg, MakeProxyHandler(svc_ch, 50));
  proxy.Install();
  uint64_t got = 0;
  const Ptid app = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(RingCall(ctx, proxy.ring(), {.nr = kKvGet, .a0 = 7}, &got));
      },
      false);
  m.Start(service);
  m.Start(app);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(got, 77u);
  EXPECT_EQ(proxy.served(), 1u);
}

TEST(ServicesTest, ProxyChainsChannels) {
  // app -> proxy (policy) -> KV service, all on dedicated hardware threads.
  Machine m;
  const Channel app_ch{0x00400000};
  const Channel svc_ch{0x00410000};
  const HashTableRef table{kTableBase, 256};
  table.HostPut(m.mem().phys(), 3, 33);
  const Ptid service =
      m.BindNative(0, 2, MakeSyscallServer(svc_ch, MakeKvHandler(table)), true);
  const Ptid proxy =
      m.BindNative(0, 1, MakeSyscallServer(app_ch, MakeProxyHandler(svc_ch, 50)), true);
  uint64_t got = 0;
  const Ptid app = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(SyscallCall(ctx, app_ch, {.nr = kKvGet, .a0 = 3}, &got));
      },
      false);
  m.Start(service);
  m.Start(proxy);
  m.Start(app);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(got, 33u);
  // Both middleboxes parked again.
  EXPECT_EQ(m.threads().thread(proxy).state(), ThreadState::kWaiting);
  EXPECT_EQ(m.threads().thread(service).state(), ThreadState::kWaiting);
}

TEST(ServicesTest, TwoClientsTwoChannelsOneTable) {
  // Independent channels (one per client) serving the same hash table.
  Machine m;
  const Channel ch_a{0x00400000};
  const Channel ch_b{0x00420000};
  const HashTableRef table{kTableBase, 1024};
  const Ptid srv_a = m.BindNative(0, 2, MakeSyscallServer(ch_a, MakeKvHandler(table)), true);
  const Ptid srv_b = m.BindNative(0, 3, MakeSyscallServer(ch_b, MakeKvHandler(table)), true);
  uint64_t got_a = 0;
  uint64_t got_b = 0;
  const Ptid app_a = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        uint64_t ok = 0;
        co_await ctx.Call(SyscallCall(ctx, ch_a, {.nr = kKvPut, .a0 = 10, .a1 = 100}, &ok));
        co_await ctx.Call(SyscallCall(ctx, ch_a, {.nr = kKvGet, .a0 = 20}, &got_a));
      },
      false);
  const Ptid app_b = m.BindNative(
      0, 1,
      [&](GuestContext& ctx) -> GuestTask {
        uint64_t ok = 0;
        co_await ctx.Call(SyscallCall(ctx, ch_b, {.nr = kKvPut, .a0 = 20, .a1 = 200}, &ok));
        co_await ctx.Call(SyscallCall(ctx, ch_b, {.nr = kKvGet, .a0 = 10}, &got_b));
      },
      false);
  m.Start(srv_a);
  m.Start(srv_b);
  m.Start(app_a);
  m.Start(app_b);
  ASSERT_TRUE(m.RunToQuiescence());
  // Each client reads the other's write through the shared table (with both
  // orders possible, 0 is acceptable only if the other put had not landed —
  // but quiescence guarantees both completed; gets ran after both puts in
  // every interleaving here because each client put before getting).
  EXPECT_TRUE(got_a == 200u || got_a == 0u);
  EXPECT_TRUE(got_b == 100u || got_b == 0u);
  EXPECT_EQ(table.HostGet(m.mem().phys(), 10), 100u);
  EXPECT_EQ(table.HostGet(m.mem().phys(), 20), 200u);
}

TEST(SyscallLayerTest, ServerSurvivesClientRestart) {
  Machine m;
  const Channel ch{kChannelBase};
  const Ptid server = m.BindNative(
      0, 0,
      MakeSyscallServer(ch,
                        [](GuestContext& c, const SyscallRequest& req, uint64_t* ret)
                            -> GuestTask {
                          co_await c.Compute(10);
                          *ret = req.a0 * 3;
                        }),
      true);
  uint64_t r = 0;
  const Ptid app = m.BindNative(
      0, 1,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(SyscallCall(ctx, ch, {.nr = 1, .a0 = 7}, &r));
      },
      false);
  m.Start(server);
  m.Start(app);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(r, 21u);
  // Restart the client program: fresh instance issues a second call on the
  // same channel; sequence numbers continue.
  m.Start(app);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(r, 21u);
}

}  // namespace
}  // namespace casc
