// Integration tests: whole-stack scenarios combining devices, runtime
// services, exceptions, the hypervisor, and multiple cores.
#include <gtest/gtest.h>

#include <cstring>

#include "src/cpu/machine.h"
#include "src/dev/apic_timer.h"
#include "src/dev/block_dev.h"
#include "src/dev/fabric.h"
#include "src/dev/msix.h"
#include "src/dev/nic.h"
#include "src/runtime/hypervisor.h"
#include "src/runtime/rpc.h"
#include "src/runtime/services.h"
#include "src/runtime/syscall_layer.h"

namespace casc {
namespace {

TEST(IntegrationTest, KvServiceUnderTimerInterference) {
  // A KV service keeps serving while a timer thread fires every microsecond
  // on the same core — interrupt-free interference.
  Machine m;
  ApicTimerConfig tcfg;
  tcfg.period = 3000;
  tcfg.counter_addr = 0x7000;
  ApicTimer timer(m.sim(), m.mem(), tcfg);
  uint64_t timer_events = 0;
  const Ptid tick_thread = m.BindNative(
      0, 5,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Monitor(0x7000);
        for (;;) {
          co_await ctx.Mwait();
          timer_events++;
          co_await ctx.Compute(200);
        }
      },
      true);
  const Channel ch{0x00400000};
  const HashTableRef table{0x00500000, 1024};
  const Ptid server = m.BindNative(0, 0, MakeSyscallServer(ch, MakeKvHandler(table)), true);
  uint64_t sum = 0;
  const Ptid app = m.BindNative(
      0, 1,
      [&](GuestContext& ctx) -> GuestTask {
        for (uint64_t k = 1; k <= 30; k++) {
          uint64_t ret = 0;
          co_await ctx.Call(SyscallCall(ctx, ch, {.nr = kKvPut, .a0 = k, .a1 = k * k}, &ret));
          co_await ctx.Call(SyscallCall(ctx, ch, {.nr = kKvGet, .a0 = k}, &ret));
          sum += ret;
        }
      },
      false);
  m.Start(tick_thread);
  m.Start(server);
  m.Start(app);
  timer.StartTimer();
  m.RunFor(3'000'000);
  timer.StopTimer();
  uint64_t expect = 0;
  for (uint64_t k = 1; k <= 30; k++) {
    expect += k * k;
  }
  EXPECT_EQ(sum, expect);
  EXPECT_GT(timer_events, 100u);
  EXPECT_FALSE(m.halted());
}

TEST(IntegrationTest, CrossCoreServiceCalls) {
  // App on core 0, KV service on core 1: doorbells and wakeups cross the
  // interconnect; data moves through the shared L3.
  MachineConfig cfg;
  cfg.num_cores = 2;
  Machine m(cfg);
  const Channel ch{0x00400000};
  const HashTableRef table{0x00500000, 256};
  table.HostPut(m.mem().phys(), 11, 1111);
  const Ptid server =
      m.BindNative(1, 0, MakeSyscallServer(ch, MakeKvHandler(table)), /*supervisor=*/true);
  uint64_t got = 0;
  const Ptid app = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(SyscallCall(ctx, ch, {.nr = kKvGet, .a0 = 11}, &got));
      },
      false);
  m.Start(server);
  m.Start(app);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(got, 1111u);
}

TEST(IntegrationTest, NicAndBlockDeviceConcurrently) {
  // Two independent service threads: one blocks on the NIC RX tail, one on
  // the block device CQ tail. Both make progress concurrently.
  Machine m;
  Nic nic(m.sim(), m.mem(), NicConfig{});
  BlockDevice disk(m.sim(), m.mem(), BlockConfig{});
  disk.storage().Write64(0, 0x5151);
  const NicRings rings = SetupNicRings(m.mem(), nic, 0x02000000);

  BlockDriver drv;
  drv.mmio_base = BlockConfig{}.mmio_base;
  drv.sq_base = 0x00600000;
  drv.sq_size = 16;
  drv.cq_tail = 0x00601000;
  drv.state = 0x00601040;
  m.mem().Write(0, drv.mmio_base + kBlkSqBase, 8, drv.sq_base);
  m.mem().Write(0, drv.mmio_base + kBlkSqSize, 8, drv.sq_size);
  m.mem().Write(0, drv.mmio_base + kBlkCqTailAddr, 8, drv.cq_tail);

  uint64_t frames_handled = 0;
  const Ptid net_thread = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        uint64_t seen = 0;
        co_await ctx.Monitor(rings.rx_tail);
        for (;;) {
          const uint64_t tail = co_await ctx.Load(rings.rx_tail);
          while (seen < tail) {
            seen++;
            frames_handled++;
            co_await ctx.Store(nic.config().mmio_base + kNicRxHead, seen);
          }
          co_await ctx.Mwait();
        }
      },
      true);
  uint64_t disk_word = 0;
  const Ptid disk_thread = m.BindNative(
      0, 1,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(BlockRead(ctx, drv, 0, 512, 0x00700000));
        disk_word = co_await ctx.Load(0x00700000);
      },
      true);
  m.Start(net_thread);
  m.Start(disk_thread);
  m.RunFor(1000);
  for (int i = 0; i < 3; i++) {
    nic.InjectFrame({1, 2, 3});
    m.RunFor(2000);
  }
  m.RunFor(100000);
  EXPECT_EQ(frames_handled, 3u);
  EXPECT_EQ(disk_word, 0x5151u);
}

TEST(IntegrationTest, HypervisedGuestUsesSyscallService) {
  // A user-mode guest under the hypervisor makes exception-less syscalls to
  // a service while its privileged instructions trap to the hypervisor —
  // the two mechanisms compose.
  Machine m;
  const Channel ch{0x00400000};
  int served = 0;
  const Ptid server = m.BindNative(
      0, 3,
      MakeSyscallServer(ch,
                        [&](GuestContext& c, const SyscallRequest& req,
                            uint64_t* ret) -> GuestTask {
                          co_await c.Compute(20);
                          served++;
                          *ret = req.a0 + 1;
                        }),
      true);
  Hypervisor hyp(m, 0, 0, HypervisorConfig{});
  // Guest (interpreted, user mode): a syscall over the channel — stores,
  // monitor, mwait, no privilege needed — then a privileged csrwr that traps
  // to the hypervisor, which emulates the instruction and restarts us.
  const Ptid guest = m.LoadSource(0, 1,
                                  "  li a1, 0x400000\n"   // channel base
                                  "  li a2, 1\n"
                                  "  sd a2, 128(a1)\n"    // nr = 1
                                  "  li a2, 41\n"
                                  "  sd a2, 136(a1)\n"    // a0 = 41
                                  "  addi a3, a1, 64\n"   // response doorbell
                                  "  monitor a3\n"
                                  "  ld a4, 0(a1)\n"      // request sequence
                                  "  addi a4, a4, 1\n"
                                  "  sd a4, 0(a1)\n"      // ring: wakes the server
                                  "wait:\n"
                                  "  ld a5, 0(a3)\n"
                                  "  bge a5, a4, got\n"
                                  "  mwait\n"
                                  "  j wait\n"
                                  "got:\n"
                                  "  ld a0, 192(a1)\n"    // return value (42)
                                  "  csrwr prio, a0\n"    // privileged -> VM exit
                                  "  hcall 0\n",
                                  /*supervisor=*/false, "", 0, 0x2000);
  hyp.AddGuest(1);
  hyp.Install();
  m.Start(server);
  m.Start(hyp.hyp_ptid());
  m.RunFor(100);
  m.Start(guest);
  m.RunFor(300000);
  EXPECT_EQ(served, 1);
  EXPECT_EQ(hyp.exits_handled(), 1u);
  EXPECT_EQ(hyp.VirtualCsr(0, Csr::kPrio), 42u);
  EXPECT_FALSE(m.halted());
}

TEST(IntegrationTest, NativeGuestFaultRecreatesInstance) {
  // A native program that faults (monitor overflow, no EDP-free halt since
  // we give it one) is disabled; restarting runs a fresh instance.
  MachineConfig cfg;
  cfg.mem.monitor.max_watches_per_thread = 2;
  Machine m(cfg);
  int attempts = 0;
  const Ptid p = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        attempts++;
        co_await ctx.Monitor(0x1000);
        co_await ctx.Monitor(0x2000);
        co_await ctx.Monitor(0x3000);  // overflow -> fault -> disabled
        co_await ctx.Store(0x9000, 1);  // unreachable
      },
      true, /*edp=*/0x30000);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(m.threads().thread(p).state(), ThreadState::kDisabled);
  EXPECT_EQ(m.mem().phys().Read64(0x9000), 0u);
  const ExceptionDescriptor d = ExceptionDescriptor::ReadFrom(m.mem(), 0x30000);
  EXPECT_EQ(d.type, static_cast<uint32_t>(ExceptionType::kMonitorOverflow));
  // Restart: fresh instance begins from the top (faulted instances are not
  // resumable).
  m.Start(p);
  m.RunFor(100);
  EXPECT_EQ(attempts, 2);
}

TEST(IntegrationTest, RpcBacklogDrainsWhenOverloaded) {
  // More concurrent requests than workers: the dispatcher queues the excess
  // and completes everything.
  MachineConfig cfg;
  cfg.hwt.threads_per_core = 16;
  Machine m(cfg);
  Nic server_nic(m.sim(), m.mem(), NicConfig{});
  Fabric fabric(m.sim(), FabricConfig{});
  fabric.Attach(1, &server_nic);
  NicConfig ccfg;
  ccfg.mmio_base = 0xf0100000;
  Nic client_nic(m.sim(), m.mem(), ccfg);
  fabric.Attach(9, &client_nic);
  SetupNicRings(m.mem(), client_nic, 0x05000000);
  uint64_t responses = 0;
  uint64_t consumed = 0;
  client_nic.SetRxObserver([&](const std::vector<uint8_t>&) {
    responses++;
    m.mem().Write(0, ccfg.mmio_base + kNicRxHead, 8, ++consumed);
  });
  RpcNode node(m, 0, 1, &server_nic, 0x03000000, /*workers=*/2, RpcMode::kThreadPerRequest);
  node.Install();
  m.RunFor(2000);
  for (uint64_t i = 1; i <= 12; i++) {
    fabric.InjectFrom(9, RpcFrame::Make(1, 9, i, 3000));
  }
  m.RunFor(2'000'000);
  EXPECT_EQ(node.served(), 12u);
  EXPECT_EQ(responses, 12u);
}

TEST(IntegrationTest, MsixLegacyDeviceWakesThread) {
  // A legacy IRQ-only device routed through the MSI-X bridge wakes a
  // hardware thread with no interrupt controller involved (§4).
  Machine m;
  MsixBridge bridge(m.mem());
  bridge.RegisterVector(7, 0x6000);
  ApicTimerConfig tcfg;
  tcfg.period = 5000;
  tcfg.raise_irq = true;
  tcfg.irq_vector = 7;
  ApicTimer legacy_timer(m.sim(), m.mem(), tcfg, &bridge);
  uint64_t wakes = 0;
  const Ptid handler = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Monitor(0x6000);
        for (;;) {
          co_await ctx.Mwait();
          wakes++;
        }
      },
      true);
  m.Start(handler);
  legacy_timer.StartTimer();
  m.RunFor(52000);
  legacy_timer.StopTimer();
  EXPECT_GE(wakes, 9u);
  EXPECT_EQ(bridge.CountFor(7), legacy_timer.fires());
}

TEST(IntegrationTest, SchedulerThreadSwapsSoftwareContexts) {
  // The §3.1/§4 OS-scheduler pattern end to end: a kernel scheduler thread
  // wakes on the timer, uses rpull/rpush to swap a software thread out of
  // one hardware thread into another, and restarts it where it left off.
  Machine m;
  ApicTimerConfig tcfg;
  tcfg.period = 40000;
  tcfg.counter_addr = 0x7000;
  tcfg.one_shot = true;
  ApicTimer timer(m.sim(), m.mem(), tcfg);
  // A counting program on hardware thread 1.
  const Ptid victim = m.LoadSource(0, 1,
                                   "loop:\n"
                                   "  addi a0, a0, 1\n"
                                   "  j loop\n",
                                   /*supervisor=*/false, "", 0, 0x2000);
  const Ptid destination = m.threads().PtidOf(0, 2);
  const Ptid scheduler = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Monitor(0x7000);
        co_await ctx.Mwait();
        // Swap: stop the victim, pull its context, push into thread 2.
        co_await ctx.Stop(victim);
        const uint64_t pc = co_await ctx.Rpull(victim, static_cast<uint32_t>(RemoteReg::kPc));
        const uint64_t a0 = co_await ctx.Rpull(victim, 10);
        co_await ctx.Rpush(destination, static_cast<uint32_t>(RemoteReg::kPc), pc);
        co_await ctx.Rpush(destination, 10, a0);
        co_await ctx.Start(destination);
      },
      true);
  m.Start(scheduler);
  m.Start(victim);
  timer.StartTimer();
  m.RunFor(200000);
  EXPECT_EQ(m.threads().thread(victim).state(), ThreadState::kDisabled);
  EXPECT_EQ(m.threads().thread(destination).state(), ThreadState::kRunnable);
  // The counter kept increasing in its new home.
  const uint64_t mid = m.threads().thread(destination).ReadGpr(10);
  EXPECT_GT(mid, 0u);
  m.RunFor(100000);
  EXPECT_GT(m.threads().thread(destination).ReadGpr(10), mid);
}

}  // namespace
}  // namespace casc
