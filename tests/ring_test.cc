// Tests for the shared-ring syscall/IPC transport (DESIGN.md §4l): batched
// submit/collect round trips, full-ring backpressure, the completion
// overwrite guard, ticket wraparound at the 2^64 index max, the worker
// park/deep-park/scale-up policy (including the lost-wakeup regression), and
// bit-identical results at every host-thread count.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "src/cpu/machine.h"
#include "src/runtime/ring.h"

namespace casc {
namespace {

constexpr Addr kRingBase = 0x00400000;
constexpr Addr kFlagAddr = 0x00300000;

uint64_t Read64(Machine& m, Addr a) {
  uint8_t raw[8];
  m.mem().DmaRead(a, raw, sizeof(raw));
  uint64_t v = 0;
  std::memcpy(&v, raw, 8);
  return v;
}

// Handler used throughout: ret = a0 + a1 after `a2` cycles of compute, so
// tests can both check data integrity and skew per-request service times.
SyscallHandler AddHandler() {
  return [](GuestContext& ctx, const SyscallRequest& req, uint64_t* ret) -> GuestTask {
    if (req.a2 > 0) {
      co_await ctx.Compute(req.a2);
    }
    *ret = req.a0 + req.a1;
  };
}

TEST(RingTest, SingleCallRoundTrip) {
  Machine m;
  RingConfig cfg;
  cfg.entries = 8;
  cfg.num_workers = 2;
  cfg.name = "rt";
  RingServer server(m, 0, 0, kRingBase, cfg, AddHandler());
  server.Install();
  uint64_t ret = 0;
  const Ptid client = m.BindNative(
      0, 2,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(RingCall(ctx, server.ring(), {.nr = 1, .a0 = 40, .a1 = 2}, &ret));
        co_await ctx.StopSelf();
      },
      /*supervisor=*/false);  // user mode: the transport needs no privilege
  m.Start(client);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(ret, 42u);
  EXPECT_EQ(server.served(), 1u);
}

TEST(RingTest, BatchCompletesOutOfOrderAndCollectsInOrder) {
  Machine m;
  RingConfig cfg;
  cfg.entries = 16;
  cfg.num_workers = 4;
  cfg.name = "batch";
  RingServer server(m, 0, 0, kRingBase, cfg, AddHandler());
  server.Install();
  constexpr uint32_t kN = 12;
  std::vector<SyscallRequest> reqs;
  for (uint64_t i = 0; i < kN; i++) {
    // Earlier tickets get *longer* service times, so with 4 workers the
    // completions post out of ticket order and RingCollect must reassemble.
    reqs.push_back({.nr = 1, .a0 = i, .a1 = 1000 + i, .a2 = (kN - i) * 500});
  }
  uint64_t rets[kN] = {};
  const Ptid client = m.BindNative(
      0, 4,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(RingCallBatch(ctx, server.ring(), reqs.data(), kN, rets));
        co_await ctx.StopSelf();
      },
      false);
  m.Start(client);
  ASSERT_TRUE(m.RunToQuiescence());
  for (uint64_t i = 0; i < kN; i++) {
    EXPECT_EQ(rets[i], 1000 + 2 * i) << "ticket " << i;
  }
  EXPECT_EQ(server.served(), static_cast<uint64_t>(kN));
  // All four workers got a share (service skew guarantees overlap).
  uint64_t sum = 0;
  for (uint32_t w = 0; w < 4; w++) {
    sum += server.served_by(w);
  }
  EXPECT_EQ(sum, static_cast<uint64_t>(kN));
}

// Two full laps submitted before a single collect: the workers drain lap one
// into the completion ring, then stall on the overwrite guard — the CR slots
// still hold unconsumed lap-one completions — until the client consumes
// them. The submission side must also survive slot reuse (lap-two tickets
// overwrite lap-one descriptors only after their taken tags).
TEST(RingTest, FullRingBackpressureAndCompletionOverwriteGuard) {
  Machine m;
  RingConfig cfg;
  cfg.entries = 4;
  cfg.num_workers = 2;
  cfg.name = "guard";
  RingServer server(m, 0, 0, kRingBase, cfg, AddHandler());
  server.Install();
  constexpr uint32_t kN = 8;  // 2 * entries outstanding before any collect
  std::vector<SyscallRequest> reqs;
  for (uint64_t i = 0; i < kN; i++) {
    reqs.push_back({.nr = 1, .a0 = i, .a1 = 100, .a2 = 50});
  }
  uint64_t rets[kN] = {};
  const Ptid client = m.BindNative(
      0, 2,
      [&](GuestContext& ctx) -> GuestTask {
        uint64_t first = 0;
        co_await ctx.Call(RingSubmitBatch(ctx, server.ring(), reqs.data(), 4, &first));
        uint64_t second = 0;
        co_await ctx.Call(RingSubmitBatch(ctx, server.ring(), reqs.data() + 4, 4, &second));
        co_await ctx.Store(kFlagAddr, 1);
        co_await ctx.Compute(1000000);  // hold all 8 completions unconsumed
        co_await ctx.Call(RingCollect(ctx, server.ring(), first, kN, rets));
        co_await ctx.StopSelf();
      },
      false);
  m.Start(client);
  m.RunFor(300000);
  // Mid-flight invariant: both batches submitted, but only the first lap of
  // completions posted — the workers are parked on the overwrite guard.
  ASSERT_EQ(Read64(m, kFlagAddr), 1u);
  EXPECT_EQ(Read64(m, server.ring().sr_ticket()), 8u);
  EXPECT_EQ(Read64(m, server.ring().cr_head()), 4u) << "overwrite guard must hold lap two";
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(Read64(m, server.ring().cr_head()), 8u);
  for (uint64_t i = 0; i < kN; i++) {
    EXPECT_EQ(rets[i], i + 100) << "ticket " << i;
  }
}

// Tickets are u64 and the ring math must be continuous across the 2^64 wrap:
// InstallRing can seed the allocator just below the wrap, and a workload
// whose tickets straddle index max produces the same results as one starting
// at zero (slot indices stay `t mod entries`; tags stay exact equality).
TEST(RingTest, TicketWraparoundAtIndexMax) {
  auto run = [](uint64_t start_ticket) {
    Machine m;
    RingConfig cfg;
    cfg.entries = 8;
    cfg.num_workers = 2;
    cfg.name = "wrap";
    RingServer server(m, 0, 0, kRingBase, cfg, AddHandler());
    server.Install(start_ticket);
    std::vector<uint64_t> rets;
    const Ptid client = m.BindNative(
        0, 2,
        [&](GuestContext& ctx) -> GuestTask {
          for (uint64_t round = 0; round < 3; round++) {
            SyscallRequest reqs[6];
            uint64_t out[6] = {};
            for (uint64_t i = 0; i < 6; i++) {
              reqs[i] = {.nr = 1, .a0 = round * 10 + i, .a1 = 7, .a2 = 20};
            }
            co_await ctx.Call(RingCallBatch(ctx, server.ring(), reqs, 6, out));
            for (uint64_t i = 0; i < 6; i++) {
              rets.push_back(out[i]);
            }
          }
          co_await ctx.StopSelf();
        },
        false);
    m.Start(client);
    EXPECT_TRUE(m.RunToQuiescence());
    EXPECT_EQ(server.served(), 18u);
    return rets;
  };
  // 18 tickets from 2^64 - 9: the allocator and every slot index wrap.
  const auto wrapped = run(~uint64_t{0} - 8);
  const auto zero = run(0);
  EXPECT_EQ(wrapped, zero);
  ASSERT_EQ(wrapped.size(), 18u);
  EXPECT_EQ(wrapped[0], 7u);
  EXPECT_EQ(wrapped[17], 25u + 7u);  // round 2, i 5
}

// Park/wake regression (the PR-5 lost-wakeup shape): a trickle leaves the
// non-lead worker deep-parked (stopped), then a burst larger than the
// scale-up threshold arrives. The lead must keep serving — it never
// deep-parks — and must restart the sibling; nothing may hang even though
// the burst raced the sibling's StopSelf.
TEST(RingTest, DeepParkScaleUpAndNoLostWakeup) {
  Machine m;
  RingConfig cfg;
  cfg.entries = 16;
  cfg.num_workers = 2;
  cfg.name = "park";
  cfg.spin_polls = 2;
  cfg.park_rounds = 1;  // deep-park after one empty mwait wake
  cfg.scale_up_backlog = 3;
  RingServer server(m, 0, 0, kRingBase, cfg, AddHandler());
  server.Install();
  uint64_t burst_rets[12] = {};
  const Ptid client = m.BindNative(
      0, 2,
      [&](GuestContext& ctx) -> GuestTask {
        // Trickle: each call wakes both workers but only one wins the claim;
        // the loser's empty wakes push it past park_rounds into deep park.
        for (uint64_t i = 0; i < 6; i++) {
          uint64_t ret = 0;
          co_await ctx.Call(RingCall(ctx, server.ring(), {.nr = 1, .a0 = i, .a1 = 0}, &ret));
          co_await ctx.Compute(5000);
        }
        // Burst: backlog crosses scale_up_backlog, the lead restarts the
        // deep-parked sibling mid-burst.
        SyscallRequest reqs[12];
        for (uint64_t i = 0; i < 12; i++) {
          reqs[i] = {.nr = 1, .a0 = i, .a1 = 500, .a2 = 300};
        }
        co_await ctx.Call(RingCallBatch(ctx, server.ring(), reqs, 12, burst_rets));
        co_await ctx.StopSelf();
      },
      false);
  m.Start(client);
  ASSERT_TRUE(m.RunToQuiescence()) << "a lost wakeup would hang the burst";
  EXPECT_EQ(server.served(), 18u);
  EXPECT_GE(server.deep_parks(), 1u);
  EXPECT_GE(server.scale_wakes(), 1u);
  for (uint64_t i = 0; i < 12; i++) {
    EXPECT_EQ(burst_rets[i], i + 500);
  }
}

TEST(RingTest, ScaleDownWithDeepParkDisabledKeepsWorkersResident) {
  Machine m;
  RingConfig cfg;
  cfg.entries = 8;
  cfg.num_workers = 2;
  cfg.name = "nodeep";
  cfg.spin_polls = 1;
  cfg.park_rounds = 1;
  cfg.allow_deep_park = false;  // ablation: mwait-park only
  RingServer server(m, 0, 0, kRingBase, cfg, AddHandler());
  server.Install();
  const Ptid client = m.BindNative(
      0, 2,
      [&](GuestContext& ctx) -> GuestTask {
        for (uint64_t i = 0; i < 8; i++) {
          uint64_t ret = 0;
          co_await ctx.Call(RingCall(ctx, server.ring(), {.nr = 1, .a0 = i, .a1 = i}, &ret));
          co_await ctx.Compute(4000);
        }
        co_await ctx.StopSelf();
      },
      false);
  m.Start(client);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(server.served(), 8u);
  EXPECT_EQ(server.deep_parks(), 0u);
  EXPECT_EQ(server.scale_wakes(), 0u);
}

// The determinism contract (DESIGN.md §4l): all actors of a ring live on its
// home core, so under the sharded engine every ring is shard-local and the
// observable results — returns, stats, final clock — are bit-identical at
// every host-thread count. Four cores each run an independent ring workload.
struct RingSnapshot {
  Tick final_now = 0;
  std::vector<uint64_t> sums;
  std::string stats_json;
  bool quiesced = false;

  bool operator==(const RingSnapshot& o) const {
    return final_now == o.final_now && sums == o.sums && stats_json == o.stats_json &&
           quiesced == o.quiesced;
  }
};

RingSnapshot RunShardedRings(uint32_t host_threads) {
  constexpr uint32_t kCores = 4;
  MachineConfig mc;
  mc.num_cores = kCores;
  mc.hwt.threads_per_core = 8;
  mc.host_threads = host_threads;
  Machine m(mc);
  std::vector<std::unique_ptr<RingServer>> servers;
  for (uint32_t c = 0; c < kCores; c++) {
    RingConfig cfg;
    cfg.entries = 8;
    cfg.num_workers = 2;
    cfg.name = "c" + std::to_string(c);
    cfg.spin_polls = 2;
    cfg.park_rounds = 1;
    servers.push_back(std::make_unique<RingServer>(
        m, c, 0, kRingBase + static_cast<Addr>(c) * 0x10000, cfg, AddHandler()));
    servers[c]->Install();
  }
  std::vector<Ptid> clients;
  for (uint32_t c = 0; c < kCores; c++) {
    clients.push_back(m.BindNative(
        c, 2,
        [&, c](GuestContext& ctx) -> GuestTask {
          uint64_t sum = 0;
          for (uint64_t round = 0; round < 4; round++) {
            SyscallRequest reqs[5];
            uint64_t rets[5] = {};
            for (uint64_t i = 0; i < 5; i++) {
              reqs[i] = {.nr = 1, .a0 = c * 100 + round * 10 + i, .a1 = i, .a2 = 40 * i};
            }
            co_await ctx.Call(RingCallBatch(ctx, servers[c]->ring(), reqs, 5, rets));
            for (uint64_t i = 0; i < 5; i++) {
              sum += rets[i];
            }
          }
          co_await ctx.Store(kFlagAddr + c * 0x100, sum);
          co_await ctx.StopSelf();
        },
        false));
  }
  for (Ptid p : clients) {
    m.Start(p);
  }
  RingSnapshot s;
  s.quiesced = m.RunToQuiescence();
  s.final_now = m.sim().now();
  for (uint32_t c = 0; c < kCores; c++) {
    s.sums.push_back(Read64(m, kFlagAddr + c * 0x100));
  }
  std::ostringstream os;
  m.sim().stats().DumpJson(os);
  s.stats_json = os.str();
  return s;
}

TEST(RingTest, ResultsIdenticalAtEveryHostThreadCount) {
  const RingSnapshot base = RunShardedRings(/*host_threads=*/1);
  EXPECT_TRUE(base.quiesced);
  for (uint32_t c = 0; c < 4; c++) {
    EXPECT_NE(base.sums[c], 0u) << "core " << c;
  }
  for (uint32_t ht : {0u, 2u, 4u}) {
    EXPECT_EQ(RunShardedRings(ht), base) << "host_threads=" << ht;
  }
}

}  // namespace
}  // namespace casc
