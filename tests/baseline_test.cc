// Tests for the baseline (conventional) architecture model: scheduler
// dispatch, context-switch costs, blocking/wakeup, IRQ delivery and
// preemption, quantum round robin, syscall mode switches, and VM-exits.
#include <gtest/gtest.h>

#include "src/baseline/baseline_machine.h"
#include "src/dev/apic_timer.h"
#include "src/dev/nic.h"

namespace casc {
namespace {

TEST(BaselineTest, RunsThreadToCompletion) {
  BaselineMachine m;
  bool done = false;
  m.cpu(0).Spawn(
      "worker",
      [](SoftContext& ctx) -> GuestTask {
        co_await ctx.Compute(1000);
        co_await ctx.Store(0x5000, 99);
      },
      [&] { done = true; });
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_TRUE(done);
  EXPECT_EQ(m.mem().phys().Read64(0x5000), 99u);
  // Dispatch + ~1000 compute + store: plausible envelope.
  EXPECT_GE(m.sim().now(), 1000u);
  EXPECT_LT(m.sim().now(), 3000u);
  EXPECT_EQ(m.cpu(0).context_switches(), 1u);
}

TEST(BaselineTest, ContextSwitchChargesRealCost) {
  // Two threads that each block once force switches; compare busy time with
  // a single-thread run of the same total compute.
  BaselineMachineConfig cfg;
  BaselineMachine m(cfg);
  SoftThread* a = nullptr;
  SoftThread* b = nullptr;
  a = m.cpu(0).Spawn("a", [&](SoftContext& ctx) -> GuestTask {
    co_await ctx.Compute(100);
    co_await ctx.Block();
    co_await ctx.Compute(100);
  });
  b = m.cpu(0).Spawn("b", [&](SoftContext& ctx) -> GuestTask {
    co_await ctx.Compute(100);
    m.cpu(0).Wake(a);  // host-side wakeup (kernel would do this)
    co_await ctx.Compute(100);
  });
  (void)b;
  ASSERT_TRUE(m.RunToQuiescence());
  // 400 cycles of compute, but switches/dispatches add hundreds of cycles.
  EXPECT_GT(m.sim().now(), 600u);
  EXPECT_GE(m.cpu(0).context_switches(), 3u);
}

TEST(BaselineTest, BlockedThreadDoesNotRunUntilWoken) {
  BaselineMachine m;
  int order = 0;
  int blocked_done_order = 0;
  int other_done_order = 0;
  SoftThread* blocked = m.cpu(0).Spawn(
      "blocked",
      [](SoftContext& ctx) -> GuestTask {
        co_await ctx.Block();
        co_await ctx.Compute(10);
      },
      [&] { blocked_done_order = ++order; });
  m.cpu(0).Spawn(
      "other",
      [&](SoftContext& ctx) -> GuestTask {
        co_await ctx.Compute(5000);
        m.cpu(0).Wake(blocked);
        co_await ctx.Compute(10);
      },
      [&] { other_done_order = ++order; });
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(other_done_order, 1);
  EXPECT_EQ(blocked_done_order, 2);
}

TEST(BaselineTest, IrqPreemptsRunningThread) {
  BaselineMachine m;
  Tick handled_at = 0;
  m.cpu(0).SetIrqHandler(7, [&] {
    handled_at = m.sim().now();
    return 100;  // handler body cycles
  });
  m.cpu(0).Spawn("spinner", [](SoftContext& ctx) -> GuestTask {
    co_await ctx.Compute(1'000'000);
  });
  m.RunFor(10000);  // spinner mid-compute
  const Tick raised_at = m.sim().now();
  m.cpu(0).RaiseIrq(7);
  m.RunFor(5000);
  ASSERT_NE(handled_at, 0u);
  // Detected at the next op boundary (<= check interval) + IRQ entry.
  EXPECT_LE(handled_at - raised_at,
            m.cpu(0).config().op_check_interval + m.cpu(0).config().irq_entry + 5);
  EXPECT_EQ(m.cpu(0).irqs_handled(), 1u);
}

TEST(BaselineTest, IdleWakeAddsLatency) {
  BaselineMachine m;
  Tick handled_at = 0;
  m.cpu(0).SetIrqHandler(7, [&] {
    handled_at = m.sim().now();
    return 0;
  });
  m.RunFor(1000);  // cpu idle
  const Tick raised_at = m.sim().now();
  m.cpu(0).RaiseIrq(7);
  m.RunFor(5000);
  ASSERT_NE(handled_at, 0u);
  EXPECT_GE(handled_at - raised_at, m.cpu(0).config().idle_wake);
}

TEST(BaselineTest, QuantumRoundRobinInterleaves) {
  BaselineMachineConfig cfg;
  cfg.cpu.quantum = 1000;
  BaselineMachine m(cfg);
  std::vector<int> finish_order;
  for (int i = 0; i < 2; i++) {
    m.cpu(0).Spawn(
        "t" + std::to_string(i),
        [](SoftContext& ctx) -> GuestTask { co_await ctx.Compute(5000); },
        [&finish_order, i] { finish_order.push_back(i); });
  }
  ASSERT_TRUE(m.RunToQuiescence());
  ASSERT_EQ(finish_order.size(), 2u);
  // With timeslicing both finish near the end; many switches occurred.
  EXPECT_GE(m.cpu(0).context_switches(), 5u);
}

TEST(BaselineTest, FcfsRunsToCompletion) {
  BaselineMachineConfig cfg;
  cfg.cpu.quantum = 0;  // run to completion
  BaselineMachine m(cfg);
  std::vector<int> finish_order;
  std::vector<Tick> finish_time;
  for (int i = 0; i < 2; i++) {
    m.cpu(0).Spawn(
        "t" + std::to_string(i),
        [](SoftContext& ctx) -> GuestTask { co_await ctx.Compute(5000); },
        [&, i] {
          finish_order.push_back(i);
          finish_time.push_back(m.sim().now());
        });
  }
  ASSERT_TRUE(m.RunToQuiescence());
  ASSERT_EQ(finish_order, (std::vector<int>{0, 1}));
  // Strictly serial: second finishes ~5000 cycles after the first.
  EXPECT_GE(finish_time[1] - finish_time[0], 5000u);
  EXPECT_EQ(m.cpu(0).context_switches(), 2u);
}

TEST(BaselineTest, SyscallModeSwitchCost) {
  BaselineMachine m;
  Tick with_syscall = 0;
  m.cpu(0).Spawn(
      "sys",
      [](SoftContext& ctx) -> GuestTask {
        co_await ctx.EnterKernel();
        co_await ctx.Compute(50);  // kernel work
        co_await ctx.ExitKernel();
      },
      [&] { with_syscall = m.sim().now(); });
  ASSERT_TRUE(m.RunToQuiescence());

  BaselineMachine m2;
  Tick without_syscall = 0;
  m2.cpu(0).Spawn(
      "plain",
      [](SoftContext& ctx) -> GuestTask { co_await ctx.Compute(50); },
      [&] { without_syscall = m2.sim().now(); });
  ASSERT_TRUE(m2.RunToQuiescence());
  const Tick overhead = with_syscall - without_syscall;
  EXPECT_GE(overhead, m.cpu(0).config().syscall_entry + m.cpu(0).config().syscall_exit);
  EXPECT_LT(overhead, 500u);
}

TEST(BaselineTest, KernelFpUseInflatesSyscalls) {
  BaselineMachineConfig plain_cfg;
  BaselineMachineConfig fp_cfg;
  fp_cfg.cpu.kernel_uses_fp = true;
  Tick plain_done = 0;
  Tick fp_done = 0;
  auto body = [](SoftContext& ctx) -> GuestTask {
    for (int i = 0; i < 100; i++) {
      co_await ctx.EnterKernel();
      co_await ctx.Compute(10);
      co_await ctx.ExitKernel();
    }
  };
  BaselineMachine m1(plain_cfg);
  m1.cpu(0).Spawn("p", body, [&] { plain_done = m1.sim().now(); });
  ASSERT_TRUE(m1.RunToQuiescence());
  BaselineMachine m2(fp_cfg);
  m2.cpu(0).Spawn("f", body, [&] { fp_done = m2.sim().now(); });
  ASSERT_TRUE(m2.RunToQuiescence());
  EXPECT_GT(fp_done, plain_done);
}

TEST(BaselineTest, VmExitRoundTripCost) {
  BaselineMachine m;
  Tick done = 0;
  m.cpu(0).Spawn(
      "guest",
      [](SoftContext& ctx) -> GuestTask {
        co_await ctx.VmExit();
        co_await ctx.Compute(100);  // hypervisor work in root mode
        co_await ctx.VmEnter();
      },
      [&] { done = m.sim().now(); });
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_GE(done, m.cpu(0).config().vmexit + m.cpu(0).config().vmentry + 100);
}

TEST(BaselineTest, NicIrqWakesBlockedThreadEndToEnd) {
  // The baseline I/O path (E2/E3 comparator): NIC IRQ -> handler wakes the
  // blocked server thread -> scheduler dispatches it.
  BaselineMachine m;
  Nic nic(m.sim(), m.mem(), NicConfig{}, &m.cpu(0));
  SoftThread* server = nullptr;
  Tick handled_at = 0;
  server = m.cpu(0).Spawn("server", [&](SoftContext& ctx) -> GuestTask {
    for (;;) {
      co_await ctx.Block();
      co_await ctx.Load(0x110000);  // read the frame
      handled_at = m.sim().now();
    }
  });
  m.cpu(0).SetIrqHandler(NicConfig{}.irq_vector, [&] {
    m.cpu(0).Wake(server);
    return 200;  // driver work in the handler
  });
  // Post one RX buffer + enable IRQs.
  uint8_t raw[16] = {};
  const Addr buf = 0x110000;
  memcpy(raw, &buf, 8);
  m.mem().phys().Write(0x100000, raw, 16);
  m.mem().Write(0, NicConfig{}.mmio_base + kNicRxBase, 8, 0x100000);
  m.mem().Write(0, NicConfig{}.mmio_base + kNicRxSize, 8, 8);
  m.mem().Write(0, NicConfig{}.mmio_base + kNicIrqEnable, 8, 1);

  m.RunFor(2000);  // server blocks; cpu idles
  const Tick inject_at = m.sim().now();
  nic.InjectFrame({1, 2, 3});
  m.RunFor(20000);
  ASSERT_NE(handled_at, 0u);
  const Tick latency = handled_at - inject_at;
  // DMA + idle wake + IRQ entry + handler + IRQ exit + dispatch (switch-in):
  // far more than the HTM mwait path measured in DeviceIntegrationTest.
  EXPECT_GT(latency, NicConfig{}.rx_dma_latency + 1000);
}

TEST(BaselineTest, ManyThreadsAllComplete) {
  BaselineMachineConfig cfg;
  cfg.cpu.quantum = 2000;
  BaselineMachine m(cfg);
  int done = 0;
  for (int i = 0; i < 50; i++) {
    m.cpu(0).Spawn(
        "t" + std::to_string(i),
        [](SoftContext& ctx) -> GuestTask {
          co_await ctx.Compute(500);
          co_await ctx.Yield();
          co_await ctx.Compute(500);
        },
        [&] { done++; });
  }
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(done, 50);
}

TEST(BaselineTest, MultipleIrqVectorsDispatchInOrder) {
  BaselineMachine m;
  std::vector<uint32_t> handled;
  for (uint32_t v : {3u, 4u, 5u}) {
    m.cpu(0).SetIrqHandler(v, [&handled, v] {
      handled.push_back(v);
      return 50;
    });
  }
  m.cpu(0).RaiseIrq(4);
  m.cpu(0).RaiseIrq(3);
  m.cpu(0).RaiseIrq(5);
  m.RunFor(20000);
  EXPECT_EQ(handled, (std::vector<uint32_t>{4, 3, 5}));
  EXPECT_EQ(m.cpu(0).irqs_handled(), 3u);
}

TEST(BaselineTest, YieldWithEmptyRunqueueContinues) {
  BaselineMachine m;
  Tick done = 0;
  m.cpu(0).Spawn(
      "solo",
      [](SoftContext& ctx) -> GuestTask {
        for (int i = 0; i < 10; i++) {
          co_await ctx.Compute(100);
          co_await ctx.Yield();  // nobody else: keeps running, no switch
        }
      },
      [&] { done = m.sim().now(); });
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_GT(done, 1000u);
  EXPECT_EQ(m.cpu(0).context_switches(), 1u);  // only the initial dispatch
}

TEST(BaselineTest, AtomicAddSerializedByCpu) {
  BaselineMachine m;
  int finished = 0;
  for (int t = 0; t < 4; t++) {
    m.cpu(0).Spawn(
        "adder",
        [](SoftContext& ctx) -> GuestTask {
          for (int i = 0; i < 25; i++) {
            co_await ctx.AtomicAdd(0x9000, 1);
          }
        },
        [&] { finished++; });
  }
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(finished, 4);
  EXPECT_EQ(m.mem().phys().Read64(0x9000), 100u);
}

TEST(BaselineTest, WakeOnFinishedThreadIsNoOp) {
  BaselineMachine m;
  SoftThread* t = m.cpu(0).Spawn("short", [](SoftContext& ctx) -> GuestTask {
    co_await ctx.Compute(10);
  });
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(t->state(), SoftThread::State::kFinished);
  m.cpu(0).Wake(t);  // must not re-enqueue a finished thread
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(t->state(), SoftThread::State::kFinished);
}

}  // namespace
}  // namespace casc
