// Tests for the fault-injection subsystem: schedule semantics, fault-class
// naming, engine bookkeeping, scenario determinism, and the recovery
// runtime's lost-wakeup regression (a descriptor delivered before the
// handler's first monitor arm must still be serviced).
#include <gtest/gtest.h>

#include <limits>

#include "src/chaos/chaos_engine.h"
#include "src/chaos/fault.h"
#include "src/chaos/scenarios.h"
#include "src/chaos/schedule.h"
#include "src/cpu/machine.h"
#include "src/runtime/recovery.h"
#include "src/sim/rng.h"

namespace casc {
namespace {

TEST(ScheduleTest, AtTickFiresExactlyOnce) {
  InjectionSchedule s = InjectionSchedule::AtTick(100);
  Rng rng(1);
  EXPECT_FALSE(s.Fire(50, rng));
  EXPECT_FALSE(s.Fire(99, rng));
  EXPECT_TRUE(s.Fire(120, rng));  // first opportunity at-or-past the tick
  EXPECT_FALSE(s.Fire(130, rng));
  EXPECT_FALSE(s.Fire(100000, rng));
}

TEST(ScheduleTest, EveryNFiresOnCadence) {
  InjectionSchedule s = InjectionSchedule::EveryN(3);
  Rng rng(1);
  int fired = 0;
  for (int i = 0; i < 12; i++) {
    fired += s.Fire(static_cast<Tick>(i), rng) ? 1 : 0;
  }
  EXPECT_EQ(fired, 4);  // every third opportunity
}

TEST(ScheduleTest, AtTickBoundaryAtTickMax) {
  // --at at the very top of tick space: the comparison is `now >= at_` with
  // no arithmetic, so there is nothing to wrap — the schedule must stay
  // armed below the boundary and fire exactly once at it.
  constexpr Tick kMax = std::numeric_limits<Tick>::max();
  InjectionSchedule s = InjectionSchedule::AtTick(kMax);
  Rng rng(1);
  EXPECT_FALSE(s.Fire(kMax - 1, rng));
  EXPECT_TRUE(s.Fire(kMax, rng));
  EXPECT_FALSE(s.Fire(kMax, rng));
}

TEST(ScheduleTest, EveryZeroCoercesToEveryEvent) {
  // --every=0 would divide by zero in `count % every`; the factory coerces
  // it to 1 (fire on every eligible event).
  InjectionSchedule s = InjectionSchedule::EveryN(0);
  Rng rng(1);
  EXPECT_TRUE(s.Fire(10, rng));
  EXPECT_TRUE(s.Fire(20, rng));
  EXPECT_TRUE(s.Fire(30, rng));
}

TEST(ScheduleTest, ProbabilityIsDeterministicPerSeed) {
  std::vector<bool> a;
  std::vector<bool> b;
  for (std::vector<bool>* out : {&a, &b}) {
    InjectionSchedule s = InjectionSchedule::WithProbability(0.3);
    Rng rng(42);
    for (int i = 0; i < 200; i++) {
      out->push_back(s.Fire(static_cast<Tick>(i), rng));
    }
  }
  EXPECT_EQ(a, b);
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_LT(std::count(a.begin(), a.end(), true), 200);
}

TEST(FaultClassTest, NamesRoundTrip) {
  for (FaultClass cls : AllScenarioClasses()) {
    FaultClass parsed;
    ASSERT_TRUE(ParseFaultClass(FaultClassName(cls), &parsed)) << FaultClassName(cls);
    EXPECT_EQ(parsed, cls);
  }
  FaultClass parsed;
  EXPECT_FALSE(ParseFaultClass("not-a-fault", &parsed));
}

TEST(ChaosEngineTest, MaxFaultsBoundsInjection) {
  // A context-poison campaign with max_faults=1 over a machine where the
  // victim wakes many times: exactly one record, and SetRecovered implies
  // detection bookkeeping stays consistent.
  ScenarioOptions opts;
  opts.seed = 5;
  opts.faults = 1;
  const ScenarioOutcome out = RunScenario(FaultClass::kContextPoison, opts);
  EXPECT_TRUE(out.ok) << out.why_not_ok;
  EXPECT_EQ(out.injected, 1u);
  EXPECT_EQ(out.detected, 1u);
  EXPECT_EQ(out.recovered, 1u);
}

TEST(ScenarioTest, SameSeedSameStatsBytes) {
  ScenarioOptions opts;
  opts.seed = 9;
  const ScenarioOutcome a = RunScenario(FaultClass::kEdpUnwritable, opts);
  const ScenarioOutcome b = RunScenario(FaultClass::kEdpUnwritable, opts);
  EXPECT_TRUE(a.ok) << a.why_not_ok;
  EXPECT_EQ(a.stats_json, b.stats_json);  // bit-reproducibility contract
}

// Cross-core scenario determinism (DESIGN.md §4k): each of the three
// cross-core fault classes must be bit-reproducible per engine — same seed,
// same stats JSON — on the legacy engine and on the sharded engine, and the
// sharded aggregate must be independent of the worker count (ht1 == ht4).
// ht0 is allowed to differ from ht>=1 (direct cross-core paths vs mailbox
// hops are different timing models), which is why this test compares within
// each engine, never across.
TEST(ScenarioTest, CrossCoreScenariosAreDeterministicPerEngine) {
  for (FaultClass cls : CrossCoreScenarioClasses()) {
    for (uint32_t ht : {0u, 1u, 4u}) {
      SCOPED_TRACE(std::string(FaultClassName(cls)) + " ht" + std::to_string(ht));
      SetDefaultHostThreads(ht);
      ScenarioOptions opts;
      opts.seed = 9;
      const ScenarioOutcome a = RunScenario(cls, opts);
      const ScenarioOutcome b = RunScenario(cls, opts);
      EXPECT_TRUE(a.ok) << a.why_not_ok;
      EXPECT_GE(a.injected, 1u);
      EXPECT_EQ(a.stats_json, b.stats_json);  // bit-reproducibility contract
    }
  }
  SetDefaultHostThreads(0);
}

TEST(ScenarioTest, CrossCoreScenariosShardIdenticallyAcrossWorkerCounts) {
  for (FaultClass cls : CrossCoreScenarioClasses()) {
    SCOPED_TRACE(FaultClassName(cls));
    ScenarioOptions opts;
    opts.seed = 5;
    SetDefaultHostThreads(1);
    const ScenarioOutcome a = RunScenario(cls, opts);
    SetDefaultHostThreads(4);
    const ScenarioOutcome b = RunScenario(cls, opts);
    SetDefaultHostThreads(0);
    EXPECT_TRUE(a.ok) << a.why_not_ok;
    EXPECT_EQ(a.stats_json, b.stats_json) << "sharded aggregate depends on worker count";
  }
}

TEST(ScenarioTest, ChainExhaustionHaltsWithReportableReason) {
  ScenarioOptions opts;
  opts.seed = 1;
  opts.expect_halt = true;
  const ScenarioOutcome out = RunScenario(FaultClass::kEdpUnwritable, opts);
  EXPECT_TRUE(out.ok) << out.why_not_ok;
  EXPECT_TRUE(out.halted);
  EXPECT_EQ(out.halt_why, HaltReason::kHandlerChainExhausted);
  EXPECT_NE(out.halt_reason.find("handler chain exhausted"), std::string::npos);
}

TEST(RecoveryTest, HandlerServicesDescriptorDeliveredBeforeItsFirstWait) {
  // Regression: the worker faults almost immediately, so its descriptor is
  // DMA-written while the handler is still in its startup path. With the
  // monitor armed only after the first scan, that write fell in the
  // scan-to-arm gap and the handler slept forever. FaultHandlerLoop must arm
  // monitors before scanning (monitor -> check -> wait).
  constexpr Addr kWorkerEdp = 0x30000;
  constexpr Addr kHandlerEdp = 0x30100;
  Machine m;
  m.mem().AddSupervisorOnlyRange(0, 0x1000);
  uint64_t worker_runs = 0;
  NativeProgram worker = [&worker_runs](GuestContext& ctx) -> GuestTask {
    worker_runs++;
    co_await ctx.Store(0x100, 1, 8);  // user store to supervisor-only: faults
  };
  const Ptid worker_ptid = m.BindNative(0, 0, worker, /*supervisor=*/false, kWorkerEdp);
  HandlerStats stats;
  HandlerPolicy policy;
  NativeProgram handler = [&, worker_ptid](GuestContext& ctx) -> GuestTask {
    return FaultHandlerLoop(ctx, {{worker_ptid, kWorkerEdp}}, policy, &stats);
  };
  const Ptid handler_ptid = m.BindNative(0, 1, handler, /*supervisor=*/true, kHandlerEdp);
  m.Start(worker_ptid);
  m.Start(handler_ptid);
  m.RunFor(20000);
  EXPECT_GE(stats.serviced, 1u);
  EXPECT_GE(stats.restarts, 1u);
  EXPECT_GE(worker_runs, 2u);  // the ward actually came back
  EXPECT_FALSE(m.threads().halted());
}

TEST(RecoveryTest, HandlerGivesUpAfterRestartBudget) {
  constexpr Addr kWorkerEdp = 0x30000;
  constexpr Addr kHandlerEdp = 0x30100;
  Machine m;
  m.mem().AddSupervisorOnlyRange(0, 0x1000);
  NativeProgram worker = [](GuestContext& ctx) -> GuestTask {
    for (;;) {
      co_await ctx.Compute(50);
      co_await ctx.Store(0x100, 1, 8);  // faults every iteration
    }
  };
  const Ptid worker_ptid = m.BindNative(0, 0, worker, /*supervisor=*/false, kWorkerEdp);
  HandlerStats stats;
  HandlerPolicy policy;
  policy.max_restarts_per_ward = 3;
  NativeProgram handler = [&, worker_ptid](GuestContext& ctx) -> GuestTask {
    return FaultHandlerLoop(ctx, {{worker_ptid, kWorkerEdp}}, policy, &stats);
  };
  const Ptid handler_ptid = m.BindNative(0, 1, handler, /*supervisor=*/true, kHandlerEdp);
  m.Start(worker_ptid);
  m.Start(handler_ptid);
  m.RunFor(100000);
  EXPECT_EQ(stats.restarts, 3u);   // budget consumed...
  EXPECT_GE(stats.gave_up, 1u);    // ...then the ward is dropped, not retried
  EXPECT_EQ(m.threads().thread(worker_ptid).state(), ThreadState::kDisabled);
  EXPECT_FALSE(m.threads().halted());
}

}  // namespace
}  // namespace casc
