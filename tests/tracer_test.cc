// Tests for the thread-state tracer and its timeline renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "src/cpu/machine.h"
#include "src/hwt/tracer.h"

namespace casc {
namespace {

TEST(TracerTest, RecordsTransitionsWithCauses) {
  Machine m;
  ThreadTracer tracer;
  m.threads().SetTracer(&tracer);
  const Ptid p = m.LoadSource(0, 0,
                              "  li a1, 0x9000\n"
                              "  monitor a1\n"
                              "  mwait\n"
                              "  halt\n",
                              true);
  m.Start(p);
  m.RunFor(2000);
  m.mem().DmaWrite64(0x9000, 1);
  m.RunToQuiescence();

  const auto events = tracer.ForThread(p);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].to, ThreadState::kRunnable);
  EXPECT_EQ(events[0].cause, TraceCause::kStart);
  EXPECT_EQ(events[1].to, ThreadState::kWaiting);
  EXPECT_EQ(events[1].cause, TraceCause::kMwait);
  EXPECT_EQ(events[2].to, ThreadState::kRunnable);
  EXPECT_EQ(events[2].cause, TraceCause::kMonitorWake);
  EXPECT_EQ(events[3].to, ThreadState::kDisabled);
  EXPECT_EQ(events[3].cause, TraceCause::kStop);
  // Ticks are monotone.
  for (size_t i = 1; i < events.size(); i++) {
    EXPECT_GE(events[i].tick, events[i - 1].tick);
  }
}

TEST(TracerTest, ExceptionCauseRecorded) {
  Machine m;
  ThreadTracer tracer;
  m.threads().SetTracer(&tracer);
  const Ptid p = m.LoadSource(0, 0,
                              "  li a1, 1\n"
                              "  li a2, 0\n"
                              "  div a0, a1, a2\n"
                              "  halt\n",
                              false, "", /*edp=*/0xa000);
  m.Start(p);
  m.RunToQuiescence();
  const auto events = tracer.ForThread(p);
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.back().to, ThreadState::kDisabled);
  EXPECT_EQ(events.back().cause, TraceCause::kException);
}

TEST(TracerTest, TimelineRendersStates) {
  ThreadTracer tracer;
  tracer.Record(0, 1, ThreadState::kDisabled, ThreadState::kRunnable, TraceCause::kStart);
  tracer.Record(500, 1, ThreadState::kRunnable, ThreadState::kWaiting, TraceCause::kMwait);
  tracer.Record(900, 1, ThreadState::kWaiting, ThreadState::kDisabled, TraceCause::kStop);
  std::ostringstream os;
  // Window extends past the final transition so the disabled tail renders.
  tracer.DumpTimeline(os, 0, 1200, 12);
  const std::string line = os.str();
  EXPECT_NE(line.find("ptid 1"), std::string::npos);
  EXPECT_NE(line.find('R'), std::string::npos);
  EXPECT_NE(line.find('w'), std::string::npos);
  EXPECT_NE(line.find('.'), std::string::npos);
}

TEST(TracerTest, MaxEventsCapsMemory) {
  ThreadTracer tracer;
  tracer.set_max_events(10);
  for (int i = 0; i < 100; i++) {
    tracer.Record(i, 0, ThreadState::kDisabled, ThreadState::kRunnable, TraceCause::kStart);
  }
  EXPECT_EQ(tracer.events().size(), 10u);
}

TEST(TracerTest, CauseNamesResolve) {
  EXPECT_STREQ(TraceCauseName(TraceCause::kStart), "start");
  EXPECT_STREQ(TraceCauseName(TraceCause::kMonitorWake), "monitor-wake");
  EXPECT_STREQ(TraceCauseName(TraceCause::kException), "exception");
}

}  // namespace
}  // namespace casc
