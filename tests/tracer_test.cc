// Tests for the thread-state tracer and its timeline renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "src/cpu/machine.h"
#include "src/hwt/tracer.h"
#include "src/sim/json.h"

namespace casc {
namespace {

TEST(TracerTest, RecordsTransitionsWithCauses) {
  Machine m;
  ThreadTracer tracer;
  m.threads().SetTracer(&tracer);
  const Ptid p = m.LoadSource(0, 0,
                              "  li a1, 0x9000\n"
                              "  monitor a1\n"
                              "  mwait\n"
                              "  halt\n",
                              true);
  m.Start(p);
  m.RunFor(2000);
  m.mem().DmaWrite64(0x9000, 1);
  m.RunToQuiescence();

  const auto events = tracer.ForThread(p);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].to, ThreadState::kRunnable);
  EXPECT_EQ(events[0].cause, TraceCause::kStart);
  EXPECT_EQ(events[1].to, ThreadState::kWaiting);
  EXPECT_EQ(events[1].cause, TraceCause::kMwait);
  EXPECT_EQ(events[2].to, ThreadState::kRunnable);
  EXPECT_EQ(events[2].cause, TraceCause::kMonitorWake);
  EXPECT_EQ(events[3].to, ThreadState::kDisabled);
  EXPECT_EQ(events[3].cause, TraceCause::kStop);
  // Ticks are monotone.
  for (size_t i = 1; i < events.size(); i++) {
    EXPECT_GE(events[i].tick, events[i - 1].tick);
  }
}

TEST(TracerTest, ExceptionCauseRecorded) {
  Machine m;
  ThreadTracer tracer;
  m.threads().SetTracer(&tracer);
  const Ptid p = m.LoadSource(0, 0,
                              "  li a1, 1\n"
                              "  li a2, 0\n"
                              "  div a0, a1, a2\n"
                              "  halt\n",
                              false, "", /*edp=*/0xa000);
  m.Start(p);
  m.RunToQuiescence();
  const auto events = tracer.ForThread(p);
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.back().to, ThreadState::kDisabled);
  EXPECT_EQ(events.back().cause, TraceCause::kException);
}

TEST(TracerTest, TimelineRendersStates) {
  ThreadTracer tracer;
  tracer.Record(0, 1, ThreadState::kDisabled, ThreadState::kRunnable, TraceCause::kStart);
  tracer.Record(500, 1, ThreadState::kRunnable, ThreadState::kWaiting, TraceCause::kMwait);
  tracer.Record(900, 1, ThreadState::kWaiting, ThreadState::kDisabled, TraceCause::kStop);
  std::ostringstream os;
  // Window extends past the final transition so the disabled tail renders.
  tracer.DumpTimeline(os, 0, 1200, 12);
  const std::string line = os.str();
  EXPECT_NE(line.find("ptid 1"), std::string::npos);
  EXPECT_NE(line.find('R'), std::string::npos);
  EXPECT_NE(line.find('w'), std::string::npos);
  EXPECT_NE(line.find('.'), std::string::npos);
}

TEST(TracerTest, MaxEventsCapsMemory) {
  ThreadTracer tracer;
  tracer.set_max_events(10);
  for (int i = 0; i < 100; i++) {
    tracer.Record(i, 0, ThreadState::kDisabled, ThreadState::kRunnable, TraceCause::kStart);
  }
  EXPECT_EQ(tracer.events().size(), 10u);
}

TEST(TracerTest, DroppedEventsCountedAndSurfaced) {
  // Regression: events past the cap were silently discarded — dropped() must
  // count them and the timeline must say it is truncated.
  ThreadTracer tracer;
  tracer.set_max_events(10);
  for (int i = 0; i < 100; i++) {
    tracer.Record(i, 0, ThreadState::kDisabled, ThreadState::kRunnable, TraceCause::kStart);
  }
  EXPECT_EQ(tracer.events().size(), 10u);
  EXPECT_EQ(tracer.dropped(), 90u);
  std::ostringstream os;
  tracer.DumpTimeline(os, 0, 100, 10);
  EXPECT_NE(os.str().find("timeline is truncated"), std::string::npos);
  tracer.Clear();
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, CompleteTimelineHasNoTruncationNote) {
  ThreadTracer tracer;
  tracer.Record(0, 1, ThreadState::kDisabled, ThreadState::kRunnable, TraceCause::kStart);
  std::ostringstream os;
  tracer.DumpTimeline(os, 0, 10, 10);
  EXPECT_EQ(os.str().find("truncated"), std::string::npos);
}

TEST(TracerTest, ChromeTraceIsValidJsonWithSpans) {
  ThreadTracer tracer;
  tracer.Record(0, 1, ThreadState::kDisabled, ThreadState::kRunnable, TraceCause::kStart);
  tracer.Record(500, 1, ThreadState::kRunnable, ThreadState::kWaiting, TraceCause::kMwait);
  tracer.Record(900, 1, ThreadState::kWaiting, ThreadState::kDisabled, TraceCause::kStop);
  tracer.Record(100, 2, ThreadState::kDisabled, ThreadState::kRunnable, TraceCause::kStart);
  std::ostringstream os;
  tracer.DumpChromeTrace(os, /*ghz=*/2.0);

  JsonValue root;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(os.str(), &root, &err)) << err;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  size_t spans = 0;
  size_t meta = 0;
  for (const JsonValue& e : events->arr) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str_v == "X") {
      spans++;
      ASSERT_TRUE(e.Find("ts") != nullptr && e.Find("ts")->is_number());
      ASSERT_TRUE(e.Find("dur") != nullptr && e.Find("dur")->is_number());
      EXPECT_GE(e.Find("ts")->num_v, 0.0);
      EXPECT_GE(e.Find("dur")->num_v, 0.0);
    } else if (ph->str_v == "M") {
      meta++;
    }
  }
  EXPECT_EQ(spans, 4u);  // three intervals for ptid 1, one for ptid 2
  EXPECT_EQ(meta, 2u);   // one thread_name record per ptid
  const JsonValue* other = root.Find("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->Find("clock_ghz"), nullptr);
  EXPECT_DOUBLE_EQ(other->Find("clock_ghz")->num_v, 2.0);
  EXPECT_DOUBLE_EQ(other->Find("recorded_events")->num_v, 4.0);
  EXPECT_DOUBLE_EQ(other->Find("dropped_events")->num_v, 0.0);
  ASSERT_NE(other->Find("truncated"), nullptr);
  EXPECT_EQ(other->Find("truncated")->type, JsonValue::Type::kBool);
  EXPECT_FALSE(other->Find("truncated")->bool_v);
}

TEST(TracerTest, TruncatedChromeTraceMarksDrops) {
  ThreadTracer tracer;
  tracer.set_max_events(2);
  for (int i = 0; i < 5; i++) {
    tracer.Record(i, 0, ThreadState::kDisabled, ThreadState::kRunnable, TraceCause::kStart);
  }
  std::ostringstream os;
  tracer.DumpChromeTrace(os);
  JsonValue root;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(os.str(), &root, &err)) << err;
  const JsonValue* other = root.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->Find("dropped_events")->num_v, 3.0);
  EXPECT_TRUE(other->Find("truncated")->bool_v);
}

TEST(TracerTest, CauseNamesResolve) {
  EXPECT_STREQ(TraceCauseName(TraceCause::kStart), "start");
  EXPECT_STREQ(TraceCauseName(TraceCause::kMonitorWake), "monitor-wake");
  EXPECT_STREQ(TraceCauseName(TraceCause::kException), "exception");
}

}  // namespace
}  // namespace casc
