// Tests for the host-parallel sharded engine (DESIGN.md §4i): cross-shard
// start/stop, monitor invalidation across shards, clock normalization, tracer
// merging, and the headline claim — observable simulation results are a pure
// function of (program, seed, config), bit-identical at every host-thread
// count.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/cpu/machine.h"
#include "src/hwt/tracer.h"

namespace casc {
namespace {

constexpr Addr FlagAddr(uint32_t c) { return 0x200000 + 0x100 * c; }
constexpr Addr SlotAddr(uint32_t c) { return 0x300000 + 0x100 * c; }

uint64_t Read64(Machine& m, Addr a) {
  uint8_t raw[8];
  m.mem().DmaRead(a, raw, sizeof(raw));
  uint64_t v = 0;
  std::memcpy(&v, raw, 8);
  return v;
}

// Everything observable about a finished run. Two runs of the same workload
// at different host-thread counts must compare equal on all of it.
struct RunSnapshot {
  Tick final_now = 0;
  std::vector<uint64_t> insts;
  std::vector<uint64_t> slots;
  std::string stats_json;
  bool halted = false;
  bool quiesced = false;

  bool operator==(const RunSnapshot& o) const {
    return final_now == o.final_now && insts == o.insts && slots == o.slots &&
           stats_json == o.stats_json && halted == o.halted && quiesced == o.quiesced;
  }
};

RunSnapshot Snapshot(Machine& m, bool quiesced, uint32_t num_slots) {
  RunSnapshot s;
  s.final_now = m.sim().now();
  for (uint32_t c = 0; c < m.num_cores(); c++) {
    s.insts.push_back(m.core(c).instructions_retired());
  }
  for (uint32_t c = 0; c < num_slots; c++) {
    s.slots.push_back(Read64(m, SlotAddr(c)));
  }
  std::ostringstream os;
  m.sim().stats().DumpJson(os);
  s.stats_json = os.str();
  s.halted = m.halted();
  s.quiesced = quiesced;
  return s;
}

// A 4-core token ring: worker 0 starts workers 1..3 (cross-shard Start),
// then each round passes a token around the ring through per-core flag
// lines. Every flag line has exactly one writer (the predecessor) and one
// monitoring reader (the owner), so the program is data-race-free and its
// cross-shard traffic — remote starts, stores landing on lines watched by
// another shard's monitor filter, the wakes they trigger — is exactly the
// mailbox traffic the engine must deliver deterministically.
RunSnapshot RunTokenRing(uint32_t host_threads, uint64_t rounds) {
  constexpr uint32_t kCores = 4;
  MachineConfig cfg;
  cfg.num_cores = kCores;
  cfg.hwt.threads_per_core = 4;
  cfg.host_threads = host_threads;
  Machine m(cfg);

  std::vector<Ptid> workers(kCores);
  for (uint32_t c = 0; c < kCores; c++) {
    const uint32_t next = (c + 1) % kCores;
    workers[c] = m.BindNative(
        c, 0,
        [c, next, rounds](GuestContext& ctx) -> GuestTask {
          for (uint64_t k = 1; k <= rounds; k++) {
            if (c == 0) {
              // Initiator: send the token, then wait for it to come back.
              co_await ctx.Store(FlagAddr(1), k);
            }
            for (;;) {
              co_await ctx.Monitor(FlagAddr(c));
              const uint64_t v = co_await ctx.Load(FlagAddr(c));
              if (v >= k) {
                break;
              }
              co_await ctx.Mwait();
            }
            co_await ctx.Compute(11 + c);
            co_await ctx.Store(SlotAddr(c), k * 1000 + c);
            if (c != 0) {
              co_await ctx.Store(FlagAddr(next), k);
            }
          }
          co_await ctx.StopSelf();
        },
        /*supervisor=*/true);
  }
  // Guest-side cross-core starts: a booter on core 0 starts every other
  // worker through the cross-shard path (host-phase Start would be serial).
  const Ptid booter = m.BindNative(
      0, 1,
      [&workers](GuestContext& ctx) -> GuestTask {
        for (uint32_t c = 1; c < workers.size(); c++) {
          co_await ctx.Start(workers[c]);
        }
        co_await ctx.StopSelf();
      },
      /*supervisor=*/true);
  m.Start(booter);
  m.Start(workers[0]);
  const bool quiesced = m.RunToQuiescence();
  return Snapshot(m, quiesced, kCores);
}

TEST(ShardEngineTest, TokenRingIdenticalAtEveryHostThreadCount) {
  const RunSnapshot base = RunTokenRing(/*host_threads=*/1, /*rounds=*/25);
  EXPECT_TRUE(base.quiesced);
  EXPECT_FALSE(base.halted);
  // Every worker completed all rounds.
  for (uint32_t c = 0; c < 4; c++) {
    EXPECT_EQ(base.slots[c], 25u * 1000 + c);
  }
  for (uint32_t ht : {2u, 4u, 8u}) {
    EXPECT_EQ(RunTokenRing(ht, 25), base) << "host_threads=" << ht;
  }
}

TEST(ShardEngineTest, TokenRingFunctionallyMatchesLegacyEngine) {
  // The legacy engine charges no conservative-window hop on monitor wakes,
  // so timing may differ — but the architectural outcome (who ran, what was
  // written) must not.
  const RunSnapshot legacy = RunTokenRing(/*host_threads=*/0, /*rounds=*/25);
  const RunSnapshot sharded = RunTokenRing(/*host_threads=*/4, /*rounds=*/25);
  EXPECT_TRUE(legacy.quiesced);
  EXPECT_TRUE(sharded.quiesced);
  EXPECT_EQ(legacy.slots, sharded.slots);
  EXPECT_FALSE(sharded.halted);
}

TEST(ShardEngineTest, SingleCoreShardedMatchesLegacyExactly) {
  // With one shard there is no cross-shard traffic to re-time: the solo fast
  // path must reproduce the legacy engine's results bit-for-bit, stats and
  // clock included.
  auto run = [](uint32_t host_threads) {
    MachineConfig cfg;
    cfg.hwt.threads_per_core = 4;
    cfg.host_threads = host_threads;
    Machine m(cfg);
    std::vector<Ptid> ps;
    for (uint32_t t = 0; t < 2; t++) {
      ps.push_back(m.BindNative(
          0, t,
          [t](GuestContext& ctx) -> GuestTask {
            for (uint64_t k = 0; k < 300; k++) {
              co_await ctx.Compute(1 + (k % 7));
              co_await ctx.Store(SlotAddr(t), k);
              co_await ctx.Load(SlotAddr(t));
            }
            co_await ctx.StopSelf();
          },
          /*supervisor=*/true));
    }
    for (Ptid p : ps) {
      m.Start(p);
    }
    const bool quiesced = m.RunToQuiescence();
    return Snapshot(m, quiesced, 2);
  };
  EXPECT_EQ(run(0), run(1));
}

TEST(ShardEngineTest, CrossShardStopIsDeterministic) {
  auto run = [](uint32_t host_threads) {
    MachineConfig cfg;
    cfg.num_cores = 2;
    cfg.host_threads = host_threads;
    Machine m(cfg);
    const Ptid spinner = m.BindNative(
        1, 0,
        [](GuestContext& ctx) -> GuestTask {
          for (;;) {
            const uint64_t v = co_await ctx.Load(SlotAddr(1));
            co_await ctx.Store(SlotAddr(1), v + 1);
          }
        },
        /*supervisor=*/true);
    const Ptid boss = m.BindNative(
        0, 0,
        [spinner](GuestContext& ctx) -> GuestTask {
          co_await ctx.Start(spinner);
          co_await ctx.Compute(5000);
          co_await ctx.Stop(spinner);
          co_await ctx.StopSelf();
        },
        /*supervisor=*/true);
    m.Start(boss);
    const bool quiesced = m.RunToQuiescence();
    return Snapshot(m, quiesced, 2);
  };
  const RunSnapshot base = run(1);
  EXPECT_TRUE(base.quiesced);
  EXPECT_GT(base.slots[1], 0u);  // the spinner made progress before the stop
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(4), base);
}

TEST(ShardEngineTest, RunForNormalizesEveryShardToTheLimit) {
  MachineConfig cfg;
  cfg.num_cores = 4;
  cfg.host_threads = 2;
  Machine m(cfg);
  const Tick start = m.sim().now();
  m.RunFor(12345);
  EXPECT_EQ(m.sim().now(), start + 12345);
  // All shards observe the same clock after normalization.
  for (uint32_t s = 0; s < m.sim().num_shards(); s++) {
    EXPECT_EQ(m.sim().QueueFor(s).now(), start + 12345);
  }
}

TEST(ShardEngineTest, TracerMergeIsDeterministicAcrossHostThreads) {
  auto trace = [](uint32_t host_threads) {
    MachineConfig cfg;
    cfg.num_cores = 2;
    cfg.host_threads = host_threads;
    Machine m(cfg);
    ThreadTracer tracer;
    m.threads().SetTracer(&tracer);
    std::vector<Ptid> ps;
    for (uint32_t c = 0; c < 2; c++) {
      ps.push_back(m.BindNative(
          c, 0,
          [c](GuestContext& ctx) -> GuestTask {
            for (int k = 0; k < 20; k++) {
              co_await ctx.Monitor(FlagAddr(c));
              co_await ctx.Compute(3 + c);
            }
            co_await ctx.StopSelf();
          },
          /*supervisor=*/true));
    }
    for (Ptid p : ps) {
      m.Start(p);
    }
    m.RunToQuiescence();
    std::vector<std::tuple<Tick, Ptid, TraceCause>> out;
    for (const ThreadTracer::Event& e : tracer.events()) {
      out.emplace_back(e.tick, e.ptid, e.cause);
    }
    return out;
  };
  const auto base = trace(1);
  EXPECT_FALSE(base.empty());
  // Merged view is tick-ordered and identical at every thread count.
  for (size_t i = 1; i < base.size(); i++) {
    EXPECT_LE(std::get<0>(base[i - 1]), std::get<0>(base[i]));
  }
  EXPECT_EQ(trace(2), base);
  EXPECT_EQ(trace(4), base);
}

TEST(ShardEngineTest, TooManyCoresFallBackToLegacyEngine) {
  MachineConfig cfg;
  cfg.num_cores = shard::kMaxShards + 1;
  cfg.hwt.threads_per_core = 1;
  cfg.host_threads = 4;
  Machine m(cfg);
  EXPECT_FALSE(m.sharded());
  m.RunFor(100);  // the legacy path still drives the machine
  EXPECT_EQ(m.sim().now(), 100u);
}

}  // namespace
}  // namespace casc
