// End-to-end CPU tests: interpreted CASC-ISA programs and native coroutine
// programs running on the simulated SMT cores with the full hardware
// threading model underneath.
#include <gtest/gtest.h>

#include <vector>

#include "src/cpu/machine.h"
#include "src/hwt/exception.h"

namespace casc {
namespace {

// Collects (code, a0) pairs from hcall instructions.
struct HcallLog {
  std::vector<std::pair<int64_t, uint64_t>> entries;

  void InstallOn(Machine& m) {
    m.SetHcallHandler([this](Core&, HwThread& t, int64_t code) {
      entries.push_back({code, t.ReadGpr(10)});
    });
  }
  uint64_t Last(int64_t code) const {
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      if (it->first == code) {
        return it->second;
      }
    }
    return UINT64_MAX;
  }
};

TEST(CpuTest, RunsArithmeticLoop) {
  Machine m;
  HcallLog log;
  log.InstallOn(m);
  // Sum 1..10 into a0.
  const Ptid p = m.LoadSource(0, 0,
                              "  li a0, 0\n"
                              "  li a1, 1\n"
                              "  li a2, 11\n"
                              "loop:\n"
                              "  add a0, a0, a1\n"
                              "  addi a1, a1, 1\n"
                              "  bne a1, a2, loop\n"
                              "  hcall 1\n"
                              "  halt\n",
                              /*supervisor=*/true);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(log.Last(1), 55u);
  EXPECT_EQ(m.threads().thread(p).state(), ThreadState::kDisabled);
  EXPECT_FALSE(m.halted());
}

TEST(CpuTest, LoadsAndStoresThroughCaches) {
  Machine m;
  HcallLog log;
  log.InstallOn(m);
  const Ptid p = m.LoadSource(0, 0,
                              "  li a1, 0x8000\n"
                              "  li a2, 1234\n"
                              "  sd a2, 0(a1)\n"
                              "  ld a0, 0(a1)\n"
                              "  addi a0, a0, 1\n"
                              "  sd a0, 8(a1)\n"
                              "  hcall 1\n"
                              "  halt\n",
                              true);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(log.Last(1), 1235u);
  EXPECT_EQ(m.mem().phys().Read64(0x8008), 1235u);
}

TEST(CpuTest, MonitorMwaitProducerConsumer) {
  Machine m;
  HcallLog log;
  log.InstallOn(m);
  // Consumer on thread 0: wait for the flag line, then read data.
  // Data lives on a different cache line (0x9040) than the watched flag
  // (0x9000) so only the flag write wakes the consumer.
  const Ptid consumer = m.LoadSource(0, 0,
                                     "  li a1, 0x9000\n"
                                     "  monitor a1\n"
                                     "  mwait\n"
                                     "  ld a0, 64(a1)\n"
                                     "  hcall 1\n"
                                     "  csrrd a0, cycle\n"
                                     "  hcall 2\n"
                                     "  halt\n",
                                     true, "", 0, 0x1000);
  // Producer on thread 1: compute a while, then write data + flag.
  const Ptid producer = m.LoadSource(0, 1,
                                     "  li a1, 0x9000\n"
                                     "  li a2, 777\n"
                                     "  li a3, 200\n"
                                     "spin:\n"
                                     "  addi a3, a3, -1\n"
                                     "  bne a3, r0, spin\n"
                                     "  sd a2, 64(a1)\n"
                                     "  csrrd a0, cycle\n"
                                     "  hcall 3\n"
                                     "  sd a2, 0(a1)\n"  // flag write wakes consumer
                                     "  halt\n",
                                     true, "", 0, 0x2000);
  m.Start(consumer);
  m.Start(producer);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(log.Last(1), 777u);
  const uint64_t produced_at = log.Last(3);
  const uint64_t consumed_at = log.Last(2);
  ASSERT_NE(produced_at, UINT64_MAX);
  ASSERT_NE(consumed_at, UINT64_MAX);
  // Wakeup is nanosecond-scale: well under 100 cycles from flag write to the
  // consumer executing again (§1 "Resuming execution ... nanosecond scale").
  EXPECT_GT(consumed_at, produced_at);
  EXPECT_LT(consumed_at - produced_at, 100u);
}

TEST(CpuTest, StartSpawnsWorkerThread) {
  Machine m;
  HcallLog log;
  log.InstallOn(m);
  const Ptid worker = m.LoadSource(0, 1,
                                   "  li a0, 42\n"
                                   "  hcall 1\n"
                                   "  halt\n",
                                   true, "", 0, 0x3000);
  const Ptid boss = m.LoadSource(0, 0,
                                 "  li a1, 1\n"  // supervisor identity vtid = ptid
                                 "  start a1\n"
                                 "  halt\n",
                                 true, "", 0, 0x1000);
  (void)worker;
  m.Start(boss);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(log.Last(1), 42u);
}

TEST(CpuTest, RpushSetsUpSoftwareThreadThenStarts) {
  // The OS-scheduler pattern from §3.1: write a disabled ptid's registers
  // (including its PC) with rpush, then start it.
  Machine m;
  HcallLog log;
  log.InstallOn(m);
  m.LoadSource(0, 1,
               "entry_a:\n"
               "  hcall 1\n"
               "  halt\n"
               "entry_b:\n"
               "  addi a0, a0, 900\n"
               "  hcall 1\n"
               "  halt\n",
               true, "entry_a", 0, 0x4000);
  const Program& dummy = *[] {
    static AssembleResult r = Assembler::Assemble(
        "  li a1, 1\n"
        "  li a2, 0x4008\n"     // entry_b (2 instructions past 0x4000)
        "  rpush a1, pc, a2\n"  // redirect the worker
        "  li a3, 55\n"
        "  rpush a1, a0, a3\n"  // seed its a0
        "  start a1\n"
        "  halt\n",
        0x1000);
    return &r.program;
  }();
  const Ptid boss = m.Load(0, 0, dummy, true);
  m.Start(boss);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(log.Last(1), 955u);
}

TEST(CpuTest, DivideByZeroHandlerChain) {
  // Faulting thread writes a descriptor; a handler thread monitoring the EDP
  // line wakes, reads the descriptor type, and reports it.
  Machine m;
  HcallLog log;
  log.InstallOn(m);
  constexpr Addr kEdp = 0xa000;
  const Ptid faulty = m.LoadSource(0, 0,
                                   "  li a1, 10\n"
                                   "  li a2, 0\n"
                                   "  div a0, a1, a2\n"
                                   "  hcall 9\n"  // must not execute
                                   "  halt\n",
                                   false, "", kEdp, 0x1000);
  const Ptid handler = m.LoadSource(0, 1,
                                    "  li a1, 0xa000\n"
                                    "  monitor a1\n"
                                    "  mwait\n"
                                    "  lw a0, 0(a1)\n"  // descriptor type field
                                    "  hcall 1\n"
                                    "  ld a0, 16(a1)\n"  // errcode? no: addr field
                                    "  halt\n",
                                    true, "", 0, 0x2000);
  m.Start(faulty);
  m.Start(handler);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(log.Last(1), static_cast<uint64_t>(ExceptionType::kDivideByZero));
  EXPECT_EQ(log.Last(9), UINT64_MAX);  // faulting thread never continued
  EXPECT_EQ(m.threads().thread(faulty).state(), ThreadState::kDisabled);
  EXPECT_FALSE(m.halted());
}

TEST(CpuTest, UnhandledExceptionHaltsMachine) {
  Machine m;
  const Ptid p = m.LoadSource(0, 0,
                              "  li a1, 1\n"
                              "  li a2, 0\n"
                              "  div a0, a1, a2\n"
                              "  halt\n",
                              false);  // no EDP
  m.Start(p);
  m.RunToQuiescence();
  EXPECT_TRUE(m.halted());
  EXPECT_NE(m.halt_reason().find("divide-by-zero"), std::string::npos);
}

TEST(CpuTest, UserModeCsrWriteFaults) {
  Machine m;
  constexpr Addr kEdp = 0xa000;
  const Ptid p = m.LoadSource(0, 0,
                              "  li a0, 1\n"
                              "  csrwr mode, a0\n"  // privileged
                              "  halt\n",
                              false, "", kEdp);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  const ExceptionDescriptor d = ExceptionDescriptor::ReadFrom(m.mem(), kEdp);
  EXPECT_EQ(d.type, static_cast<uint32_t>(ExceptionType::kPrivilegedInstruction));
  EXPECT_EQ(m.threads().thread(p).state(), ThreadState::kDisabled);
}

TEST(CpuTest, UserLoadFromProtectedRangePageFaults) {
  // §3: "Events such as page faults that trigger exceptions in today's CPUs
  // simply write an exception descriptor to memory and disable the current
  // ptid."
  Machine m;
  constexpr Addr kEdp = 0xa000;
  m.mem().AddSupervisorOnlyRange(0x00f00000, 0x1000);
  const Ptid p = m.LoadSource(0, 0,
                              "  li a1, 0x00f00800\n"
                              "  ld a0, 0(a1)\n"  // protected: page fault
                              "  hcall 9\n"        // must not run
                              "  halt\n",
                              /*supervisor=*/false, "", kEdp);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  const ExceptionDescriptor d = ExceptionDescriptor::ReadFrom(m.mem(), kEdp);
  EXPECT_EQ(d.type, static_cast<uint32_t>(ExceptionType::kPageFault));
  EXPECT_EQ(d.addr, 0x00f00800u);
  EXPECT_EQ(m.threads().thread(p).state(), ThreadState::kDisabled);
  EXPECT_FALSE(m.halted());
}

TEST(CpuTest, SupervisorAccessToProtectedRangeAllowed) {
  Machine m;
  m.mem().AddSupervisorOnlyRange(0x00f00000, 0x1000);
  const Ptid p = m.LoadSource(0, 0,
                              "  li a1, 0x00f00800\n"
                              "  li a0, 42\n"
                              "  sd a0, 0(a1)\n"
                              "  halt\n",
                              /*supervisor=*/true);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(m.mem().phys().Read64(0x00f00800), 42u);
  EXPECT_FALSE(m.halted());
}

TEST(CpuTest, NativeUserStorePageFaults) {
  Machine m;
  m.mem().AddSupervisorOnlyRange(0x00f00000, 0x1000);
  bool reached_after = false;
  const Ptid p = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Store(0x00f00000, 1);
        reached_after = true;
      },
      /*supervisor=*/false, /*edp=*/0xa000);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_FALSE(reached_after);
  EXPECT_EQ(m.threads().thread(p).state(), ThreadState::kDisabled);
  const ExceptionDescriptor d = ExceptionDescriptor::ReadFrom(m.mem(), 0xa000);
  EXPECT_EQ(d.type, static_cast<uint32_t>(ExceptionType::kPageFault));
}

TEST(CpuTest, SmtSharesCoreFairly) {
  Machine m;
  HcallLog log;
  log.InstallOn(m);
  const char* counting =
      "  li a0, 0\n"
      "  li a2, 2000\n"
      "loop:\n"
      "  addi a0, a0, 1\n"
      "  bne a0, a2, loop\n"
      "  csrrd a0, cycle\n"
      "  hcall 1\n"
      "  halt\n";
  const Ptid a = m.LoadSource(0, 0, counting, true, "", 0, 0x1000);
  const Ptid b = m.LoadSource(0, 1, counting, true, "", 0, 0x2000);
  m.Start(a);
  m.Start(b);
  ASSERT_TRUE(m.RunToQuiescence());
  // Both finish at roughly the same time (fine-grain RR over 2 SMT slots).
  ASSERT_EQ(log.entries.size(), 2u);
  const uint64_t t0 = log.entries[0].second;
  const uint64_t t1 = log.entries[1].second;
  EXPECT_LT(t0 > t1 ? t0 - t1 : t1 - t0, 100u);
}

TEST(CpuTest, PriorityWeightingSkewsProgress) {
  MachineConfig cfg;
  cfg.hwt.smt_width = 1;  // single slot: pure weighted RR
  Machine m(cfg);
  HcallLog log;
  log.InstallOn(m);
  const char* counting =
      "  li a0, 0\n"
      "  li a2, 3000\n"
      "loop:\n"
      "  addi a0, a0, 1\n"
      "  bne a0, a2, loop\n"
      "  csrrd a0, cycle\n"
      "  hcall 1\n"
      "  halt\n";
  const Ptid fast = m.LoadSource(0, 0, counting, true, "", 0, 0x1000);
  const Ptid slow = m.LoadSource(0, 1, counting, true, "", 0, 0x2000);
  m.threads().thread(fast).arch().prio = 4;
  m.Start(fast);
  m.Start(slow);
  ASSERT_TRUE(m.RunToQuiescence());
  ASSERT_EQ(log.entries.size(), 2u);
  const uint64_t fast_done = log.entries[0].second;
  const uint64_t slow_done = log.entries[1].second;
  EXPECT_LT(fast_done, slow_done);
  // With a 4:1 share the high-priority thread finishes at ~62.5% of the
  // low-priority completion time (4/5 of the shared window, then the slow
  // thread runs alone). Allow slack for startup effects.
  EXPECT_LT(static_cast<double>(fast_done), 0.7 * static_cast<double>(slow_done));
}

TEST(CpuTest, NativeProgramComputesAndStores) {
  Machine m;
  const Ptid p = m.BindNative(
      0, 0,
      [](GuestContext& ctx) -> GuestTask {
        uint64_t acc = 0;
        for (int i = 1; i <= 4; i++) {
          co_await ctx.Compute(10);
          acc += static_cast<uint64_t>(i);
        }
        co_await ctx.Store(0xb000, acc);
      },
      /*supervisor=*/true);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(m.mem().phys().Read64(0xb000), 10u);
  EXPECT_EQ(m.threads().thread(p).state(), ThreadState::kDisabled);
  // 4 computes of 10 cycles dominate: finishes in a plausible window.
  EXPECT_GE(m.sim().now(), 40u);
  EXPECT_LT(m.sim().now(), 400u);
}

TEST(CpuTest, NativeMwaitWokenByDeviceWrite) {
  Machine m;
  const Ptid p = m.BindNative(
      0, 0,
      [](GuestContext& ctx) -> GuestTask {
        co_await ctx.Monitor(0xc000);
        co_await ctx.Mwait();
        const uint64_t v = co_await ctx.Load(0xc000);
        co_await ctx.Store(0xc100, v + 1);
      },
      true);
  m.Start(p);
  // Let it reach the mwait, then DMA like a NIC would.
  m.RunFor(1000);
  EXPECT_EQ(m.threads().thread(p).state(), ThreadState::kWaiting);
  const uint64_t pkt = 41;
  m.mem().DmaWrite(0xc000, &pkt, 8);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(m.mem().phys().Read64(0xc100), 42u);
}

TEST(CpuTest, NativeServerLoopHandlesManyEvents) {
  Machine m;
  const Addr kDoorbell = 0xd000;
  const Addr kCounter = 0xd100;
  const Ptid p = m.BindNative(
      0, 0,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Monitor(kDoorbell);
        for (;;) {
          co_await ctx.Mwait();
          const uint64_t n = co_await ctx.Load(kCounter);
          co_await ctx.Store(kCounter, n + 1);
        }
      },
      true);
  m.Start(p);
  for (int i = 0; i < 5; i++) {
    m.RunFor(500);
    const uint64_t bell = static_cast<uint64_t>(i);
    m.mem().DmaWrite(kDoorbell, &bell, 8);
  }
  m.RunFor(500);
  EXPECT_EQ(m.mem().phys().Read64(kCounter), 5u);
  EXPECT_EQ(m.threads().thread(p).state(), ThreadState::kWaiting);
}

TEST(CpuTest, NativeRestartAfterCompletionRunsFreshInstance) {
  Machine m;
  int runs = 0;
  const Ptid p = m.BindNative(
      0, 0,
      [&runs](GuestContext& ctx) -> GuestTask {
        runs++;
        co_await ctx.Compute(5);
      },
      true);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(runs, 1);
  m.Start(p);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(runs, 2);
}

TEST(CpuTest, NativeStartsInterpretedWorkerAcrossCores) {
  MachineConfig cfg;
  cfg.num_cores = 2;
  Machine m(cfg);
  HcallLog log;
  log.InstallOn(m);
  const Ptid remote_worker = m.LoadSource(1, 0,
                                          "  li a0, 7\n"
                                          "  hcall 1\n"
                                          "  halt\n",
                                          true);
  const Ptid boss = m.BindNative(
      0, 0,
      [remote_worker](GuestContext& ctx) -> GuestTask {
        co_await ctx.Compute(10);
        co_await ctx.Start(remote_worker);  // supervisor identity mapping
      },
      true);
  m.Start(boss);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(log.Last(1), 7u);
}

TEST(CpuTest, WakeLatencyReflectsStorageTier) {
  // A thread whose context spilled to DRAM wakes slower than an RF-resident
  // one (E1/E8 mechanism check).
  MachineConfig cfg;
  cfg.hwt.threads_per_core = 32;
  cfg.hwt.rf_slots = 2;
  cfg.hwt.l2_slots = 2;
  cfg.hwt.l3_slots = 2;
  Machine m(cfg);
  const Ptid hot = m.LoadSource(0, 0, "halt\n", true, "", 0, 0x1000);
  const Ptid cold = m.LoadSource(0, 20, "halt\n", true, "", 0, 0x2000);
  EXPECT_EQ(m.threads().thread(hot).tier(), StorageTier::kRegFile);
  EXPECT_EQ(m.threads().thread(cold).tier(), StorageTier::kDram);
  const Tick t0 = m.sim().now();
  m.Start(hot);
  const Tick hot_ready = m.threads().thread(hot).ready_at() - t0;
  m.Start(cold);
  const Tick cold_ready = m.threads().thread(cold).ready_at() - t0;
  EXPECT_LT(hot_ready, cold_ready);
  EXPECT_EQ(hot_ready, m.config().hwt.pipeline_restore_cycles);
  EXPECT_GE(cold_ready, m.config().mem.dram_latency);
}

TEST(CpuTest, StopFromAnotherThread) {
  Machine m;
  HcallLog log;
  log.InstallOn(m);
  const Ptid spinner = m.LoadSource(0, 1,
                                    "loop:\n"
                                    "  addi a0, a0, 1\n"
                                    "  j loop\n",
                                    true, "", 0, 0x2000);
  const Ptid boss = m.LoadSource(0, 0,
                                 "  li a1, 400\n"
                                 "wait:\n"
                                 "  addi a1, a1, -1\n"
                                 "  bne a1, r0, wait\n"
                                 "  li a2, 1\n"
                                 "  stop a2\n"
                                 "  halt\n",
                                 true, "", 0, 0x1000);
  m.Start(spinner);
  m.Start(boss);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(m.threads().thread(spinner).state(), ThreadState::kDisabled);
  // The spinner made progress but was stopped mid-loop.
  EXPECT_GT(m.threads().thread(spinner).ReadGpr(10), 0u);
}

}  // namespace
}  // namespace casc
