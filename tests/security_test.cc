// Tests for the secret-key security model (§3.2's alternative to the TDT):
// unprivileged thread management gated on presenting the target's key.
#include <gtest/gtest.h>

#include "src/cpu/machine.h"
#include "src/hwt/thread_system.h"

namespace casc {
namespace {

class SecretKeyTest : public ::testing::Test {
 protected:
  SecretKeyTest() {
    MachineConfig cfg;
    cfg.hwt.security_model = SecurityModel::kSecretKey;
    cfg.hwt.threads_per_core = 16;
    machine_ = std::make_unique<Machine>(cfg);
  }

  ThreadSystem& ts() { return machine_->threads(); }

  void MakeUser(Ptid p, Addr edp = 0x30000) {
    ts().InitThread(p, 0x1000, /*supervisor=*/false, edp);
    ts().thread(p).set_state(ThreadState::kRunnable);
  }

  std::unique_ptr<Machine> machine_;
};

TEST_F(SecretKeyTest, MatchingKeyGrantsManagement) {
  MakeUser(1);
  ts().thread(2).arch().self_key = 0xdeadbeef;
  ts().thread(1).arch().auth_key = 0xdeadbeef;
  EXPECT_TRUE(ts().Start(1, 2).ok);
  EXPECT_EQ(ts().thread(2).state(), ThreadState::kRunnable);
  EXPECT_TRUE(ts().Stop(1, 2).ok);
  EXPECT_TRUE(ts().Rpull(1, 2, 5).ok);
  EXPECT_TRUE(ts().Rpush(1, 2, static_cast<uint32_t>(RemoteReg::kPc), 0x2000).ok);
  EXPECT_EQ(ts().thread(2).arch().pc, 0x2000u);
}

TEST_F(SecretKeyTest, MismatchedKeyFaults) {
  MakeUser(1);
  ts().thread(2).arch().self_key = 0xdeadbeef;
  ts().thread(1).arch().auth_key = 0x1234;  // wrong key
  EXPECT_FALSE(ts().Start(1, 2).ok);
  EXPECT_EQ(ts().thread(1).state(), ThreadState::kDisabled);
  EXPECT_EQ(ts().thread(2).state(), ThreadState::kDisabled);
}

TEST_F(SecretKeyTest, ZeroKeyLocksThread) {
  // A thread that never set a key cannot be managed by user threads at all
  // (key 0 never matches), only by the supervisor.
  MakeUser(1);
  ts().thread(1).arch().auth_key = 0;  // "matches" the default — must not
  EXPECT_FALSE(ts().Start(1, 2).ok);
}

TEST_F(SecretKeyTest, SupervisorBypassesKeys) {
  ts().InitThread(0, 0x1000, /*supervisor=*/true);
  ts().thread(0).set_state(ThreadState::kRunnable);
  ts().thread(2).arch().self_key = 0x999;  // supervisor presents no key
  EXPECT_TRUE(ts().Start(0, 2).ok);
}

TEST_F(SecretKeyTest, OutOfRangeVtidIsInvalid) {
  MakeUser(1);
  const OpResult r = ts().Start(1, 9999);
  EXPECT_FALSE(r.ok);
  machine_->sim().queue().RunAll();
  const ExceptionDescriptor d = ExceptionDescriptor::ReadFrom(machine_->mem(), 0x30000);
  EXPECT_EQ(d.type, static_cast<uint32_t>(ExceptionType::kInvalidVtid));
}

TEST_F(SecretKeyTest, KeysAreUserWritableAndWriteOnly) {
  MakeUser(1);
  EXPECT_TRUE(ts().WriteCsr(1, Csr::kSelfKey, 0x42).ok);
  EXPECT_TRUE(ts().WriteCsr(1, Csr::kAuthKey, 0x43).ok);
  EXPECT_EQ(ts().thread(1).arch().self_key, 0x42u);
  EXPECT_EQ(ts().thread(1).arch().auth_key, 0x43u);
  // Reads return 0: a key handed to us in a register cannot be read back out
  // of the CSR file.
  EXPECT_EQ(ts().ReadCsr(1, Csr::kSelfKey).value, 0u);
  EXPECT_EQ(ts().ReadCsr(1, Csr::kAuthKey).value, 0u);
  EXPECT_EQ(ts().thread(1).state(), ThreadState::kRunnable);  // no fault
}

TEST_F(SecretKeyTest, EndToEndKeyHandoffInAssembly) {
  // Worker publishes its key through shared memory; manager reads it,
  // presents it, and starts the worker — all from user mode.
  Machine& m = *machine_;
  std::vector<uint64_t> log;
  m.SetHcallHandler([&](Core&, HwThread& t, int64_t) { log.push_back(t.ReadGpr(10)); });
  // The worker's key was installed by its runtime at creation; it simply
  // runs when started.
  const Ptid worker = m.threads().PtidOf(0, 2);
  m.LoadSource(0, 2,
               "  li a0, 77\n"
               "  hcall 1\n"
               "  halt\n",
               /*supervisor=*/false, "", 0x30100, 0x3000);
  m.threads().thread(worker).arch().self_key = 0xfeed;
  m.mem().phys().Write64(0x9000, 0xfeed);  // key shared via memory
  const Ptid manager = m.LoadSource(0, 1,
                                    "  li a1, 0x9000\n"
                                    "  ld a2, 0(a1)\n"
                                    "  csrwr authkey, a2\n"  // user-writable
                                    "  li a3, 2\n"
                                    "  start a3\n"
                                    "  halt\n",
                                    /*supervisor=*/false, "", 0x30000, 0x1000);
  m.Start(manager);
  ASSERT_TRUE(m.RunToQuiescence());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 77u);
  EXPECT_FALSE(m.halted());
}

TEST_F(SecretKeyTest, TdtModeUnaffected) {
  // The default machine still uses TDTs; identity mapping requires
  // supervisor mode there.
  Machine plain;
  plain.threads().InitThread(1, 0x1000, false, 0x30000);
  plain.threads().thread(1).set_state(ThreadState::kRunnable);
  EXPECT_FALSE(plain.threads().Start(1, 2).ok);
}

}  // namespace
}  // namespace casc
