// End-to-end §3 workflows written entirely in guest assembly: a kernel
// thread that builds its own TDT in memory, grants capabilities, revokes
// them with invtid, and threads that monitor MMIO registers.
#include <gtest/gtest.h>

#include "src/cpu/machine.h"
#include "src/dev/nic.h"
#include "src/hwt/tdt.h"

namespace casc {
namespace {

struct HcallLog {
  std::vector<std::pair<int64_t, uint64_t>> entries;
  void InstallOn(Machine& m) {
    m.SetHcallHandler([this](Core&, HwThread& t, int64_t code) {
      entries.push_back({code, t.ReadGpr(10)});
    });
  }
  uint64_t Last(int64_t code) const {
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      if (it->first == code) {
        return it->second;
      }
    }
    return UINT64_MAX;
  }
};

TEST(AsmWorkflowTest, KernelBuildsTdtAndGrantsCapability) {
  // The kernel thread writes a TDT with stores, installs it for a user
  // manager thread via rpush of TDTR/TDTSIZE, and starts the manager; the
  // manager — pure user mode — then starts the worker through its granted
  // vtid 0.
  Machine m;
  HcallLog log;
  log.InstallOn(m);
  const Ptid worker = m.LoadSource(0, 2,
                                   "  li a0, 0x77\n"
                                   "  hcall 1\n"
                                   "  halt\n",
                                   /*supervisor=*/false, "", 0x30200, 0x4000);
  (void)worker;
  m.LoadSource(0, 1,
               "  li a1, 0\n"
               "  start a1\n"  // vtid 0 -> worker, via the TDT the kernel built
               "  halt\n",
               /*supervisor=*/false, "", 0x30100, 0x3000);
  const Ptid kernel = m.LoadSource(0, 0,
                                   // Build TDT entry 0 at 0x20000: ptid=2, perms=0b1111.
                                   "  li a1, 0x20000\n"
                                   "  li a2, 2\n"
                                   "  sw a2, 0(a1)\n"
                                   "  li a2, 15\n"
                                   "  sb a2, 4(a1)\n"
                                   // Install it in the manager (ptid 1) and start it.
                                   "  li a3, 1\n"
                                   "  li a4, 0x20000\n"
                                   "  rpush a3, tdtr, a4\n"
                                   "  li a4, 1\n"
                                   "  rpush a3, tdtsize, a4\n"
                                   "  start a3\n"
                                   "  halt\n",
                                   /*supervisor=*/true, "", 0, 0x1000);
  m.Start(kernel);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(log.Last(1), 0x77u);
  EXPECT_FALSE(m.halted());
}

TEST(AsmWorkflowTest, InvtidRevokesStaleTranslation) {
  // The kernel repoints vtid 0 from worker A to worker B, issues invtid, and
  // restarts through the same manager: the new mapping must take effect.
  Machine m;
  HcallLog log;
  log.InstallOn(m);
  m.LoadSource(0, 2, "  li a0, 0xaa\n  hcall 1\n  halt\n", false, "", 0x30200, 0x4000);
  m.LoadSource(0, 3, "  li a0, 0xbb\n  hcall 1\n  halt\n", false, "", 0x30300, 0x5000);
  // Manager: starts vtid 0, spins until the kernel re-rings its mailbox,
  // then starts vtid 0 again.
  m.LoadSource(0, 1,
               "  li a1, 0\n"
               "  start a1\n"
               "  li a2, 0x21000\n"
               "  monitor a2\n"
               "  mwait\n"
               "  start a1\n"  // translation must be re-walked after invtid
               "  halt\n",
               /*supervisor=*/false, "", 0x30100, 0x3000);
  const Ptid kernel = m.LoadSource(0, 0,
                                   "  li a1, 0x20000\n"
                                   "  li a2, 2\n"
                                   "  sw a2, 0(a1)\n"
                                   "  li a2, 15\n"
                                   "  sb a2, 4(a1)\n"
                                   "  li a3, 1\n"
                                   "  li a4, 0x20000\n"
                                   "  rpush a3, tdtr, a4\n"
                                   "  li a4, 1\n"
                                   "  rpush a3, tdtsize, a4\n"
                                   "  start a3\n"
                                   // Wait for A to report before repointing.
                                   "  li a5, 2000\n"
                                   "spin:\n"
                                   "  addi a5, a5, -1\n"
                                   "  bne a5, r0, spin\n"
                                   // Repoint vtid 0 -> ptid 3 and invalidate the
                                   // manager's cached translation (invtid vtid 1 = the
                                   // manager in our identity map, entry 0).
                                   "  li a2, 3\n"
                                   "  sw a2, 0(a1)\n"
                                   "  li a6, 1\n"
                                   "  li a7, 0\n"
                                   "  invtid a6, a7\n"
                                   // Ring the manager's mailbox line.
                                   "  li a2, 0x21000\n"
                                   "  sd a6, 0(a2)\n"
                                   "  halt\n",
                                   /*supervisor=*/true, "", 0, 0x1000);
  m.Start(kernel);
  ASSERT_TRUE(m.RunToQuiescence());
  // Both workers ran: A from the first start, B after the invtid.
  EXPECT_EQ(log.entries.size(), 2u);
  EXPECT_EQ(log.entries[0].second, 0xaau);
  EXPECT_EQ(log.entries[1].second, 0xbbu);
}

TEST(AsmWorkflowTest, MonitorOnMmioRegister) {
  // §3.1: "one can monitor uncachable addresses such as device memory or
  // memory-mapped I/O registers". A thread watches the NIC's TX doorbell
  // register; another thread's MMIO store wakes it.
  Machine m;
  HcallLog log;
  log.InstallOn(m);
  Nic nic(m.sim(), m.mem(), NicConfig{});
  const Addr doorbell = nic.config().mmio_base + kNicTxDoorbell;
  const Ptid watcher = m.LoadSource(0, 0,
                                    "  li a1, 0xf0000038\n"  // TX doorbell MMIO
                                    "  monitor a1\n"
                                    "  mwait\n"
                                    "  li a0, 1\n"
                                    "  hcall 1\n"
                                    "  halt\n",
                                    /*supervisor=*/true, "", 0, 0x1000);
  ASSERT_EQ(doorbell, 0xf0000038u);
  const Ptid ringer = m.LoadSource(0, 1,
                                   "  li a1, 0xf0000038\n"
                                   "  li a2, 300\n"
                                   "spin:\n"
                                   "  addi a2, a2, -1\n"
                                   "  bne a2, r0, spin\n"
                                   "  sd r0, 0(a1)\n"  // MMIO store (doorbell = 0: no TX)
                                   "  halt\n",
                                   /*supervisor=*/true, "", 0, 0x2000);
  m.Start(watcher);
  m.Start(ringer);
  ASSERT_TRUE(m.RunToQuiescence());
  EXPECT_EQ(log.Last(1), 1u);
}

}  // namespace
}  // namespace casc
