// Unit tests for the simulation kernel: event queue ordering/cancellation,
// histogram accuracy, RNG distribution sanity, and config parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "src/sim/config.h"
#include "src/sim/event_queue.h"
#include "src/sim/json.h"
#include "src/sim/rng.h"
#include "src/sim/simulation.h"
#include "src/sim/stats.h"

namespace casc {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleFn(30, [&] { order.push_back(3); });
  q.ScheduleFn(10, [&] { order.push_back(1); });
  q.ScheduleFn(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueueTest, SameTickIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; i++) {
    q.ScheduleFn(5, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 8; i++) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, ReusableEventRescheduleAndCancel) {
  EventQueue q;
  int fired = 0;
  LambdaEvent ev([&] { fired++; });
  q.Schedule(&ev, 10);
  EXPECT_TRUE(ev.scheduled());
  q.Schedule(&ev, 20);  // reschedule supersedes the earlier entry
  q.RunUntil(15);
  EXPECT_EQ(fired, 0);
  q.RunUntil(25);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(ev.scheduled());

  q.Schedule(&ev, 30);
  q.Deschedule(&ev);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, EventCanRescheduleItself) {
  EventQueue q;
  int fired = 0;
  Event* self = nullptr;
  LambdaEvent ev([&] {
    fired++;
    if (fired < 5) {
      q.ScheduleAfter(self, 7);
    }
  });
  self = &ev;
  q.Schedule(&ev, 0);
  q.RunAll();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 28u);
}

TEST(EventQueueTest, NextTickSkipsCancelled) {
  EventQueue q;
  LambdaEvent a([] {});
  q.Schedule(&a, 5);
  q.ScheduleFn(9, [] {});
  q.Deschedule(&a);
  EXPECT_EQ(q.NextTick(), 9u);
  EXPECT_EQ(q.LiveCount(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesNowWithoutEvents) {
  EventQueue q;
  q.RunUntil(100);
  EXPECT_EQ(q.now(), 100u);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, ScheduleFromWithinCallback) {
  EventQueue q;
  int late = 0;
  q.ScheduleFn(1, [&] { q.ScheduleFn(4, [&] { late = static_cast<int>(q.now()); }); });
  q.RunAll();
  EXPECT_EQ(late, 4);
}

TEST(EventQueueTest, DescheduleOfPendingEventThenReschedule) {
  EventQueue q;
  int fired = 0;
  LambdaEvent ev([&] { fired++; });
  q.Schedule(&ev, 10);
  q.Deschedule(&ev);
  EXPECT_FALSE(ev.scheduled());
  q.RunUntil(20);
  EXPECT_EQ(fired, 0);
  // The object is immediately reusable after cancellation.
  q.Schedule(&ev, 25);
  q.RunAll();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 25u);
}

TEST(EventQueueTest, RescheduleWhilePendingMovesBothDirections) {
  EventQueue q;
  std::vector<Tick> fired_at;
  LambdaEvent ev([&] { fired_at.push_back(q.now()); });
  // Near -> far: the wheel entry goes stale, the heap entry is live.
  q.Schedule(&ev, 10);
  q.Schedule(&ev, EventQueue::kWheelTicks + 500);
  q.RunUntil(100);
  EXPECT_TRUE(fired_at.empty());
  q.RunAll();
  ASSERT_EQ(fired_at.size(), 1u);
  EXPECT_EQ(fired_at[0], EventQueue::kWheelTicks + 500);
  // Far -> near: the heap entry goes stale, the wheel entry is live. The
  // stale far entry must neither fire nor drag now() forward.
  const Tick base = q.now();
  q.Schedule(&ev, base + EventQueue::kWheelTicks + 500);
  q.Schedule(&ev, base + 3);
  q.RunAll();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_EQ(fired_at[1], base + 3);
  EXPECT_EQ(q.now(), base + 3);
}

TEST(EventQueueTest, FarFutureSchedulingFiresInOrder) {
  EventQueue q;
  std::vector<int> order;
  const Tick far = 3 * EventQueue::kWheelTicks + 7;  // beyond the wheel window
  q.ScheduleFn(far, [&] { order.push_back(2); });
  q.ScheduleFn(far + 1, [&] { order.push_back(3); });
  q.ScheduleFn(5, [&] { order.push_back(1); });
  EXPECT_EQ(q.NextTick(), 5u);
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), far + 1);
}

TEST(EventQueueTest, HeapToWheelMigrationKeepsFifoWithinTick) {
  // An entry scheduled while far-future (heap overflow) and one scheduled
  // directly into the wheel for the same tick must fire in schedule order.
  EventQueue q;
  std::vector<int> order;
  const Tick t = EventQueue::kWheelTicks + 10;
  q.ScheduleFn(t, [&] { order.push_back(1); });  // heap at schedule time
  q.RunUntil(t - 1);                             // migrates into the wheel
  q.ScheduleFn(t, [&] { order.push_back(2); });  // direct same-tick append
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, RunUntilCrossesEmptyWheelSpans) {
  EventQueue q;
  int fired = 0;
  q.ScheduleFn(3, [&] { fired++; });
  q.RunAll();
  // Jump now() across several full wheel wraps with nothing scheduled.
  const Tick target = 10 * EventQueue::kWheelTicks + 123;
  q.RunUntil(target);
  EXPECT_EQ(q.now(), target);
  EXPECT_TRUE(q.Empty());
  // The wheel must still index correctly after the jump.
  q.ScheduleFn(target + 2, [&] { fired++; });
  q.ScheduleFn(target + EventQueue::kWheelTicks + 2, [&] { fired++; });
  q.RunAll();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), target + EventQueue::kWheelTicks + 2);
}

TEST(EventQueueTest, RepeatedRescheduleKeepsStorageBounded) {
  // Regression: every reschedule/cancel leaves a dead entry behind, and these
  // used to accumulate until a full drain. Compaction must keep internal
  // storage proportional to the live population.
  EventQueue q;
  LambdaEvent ev([] {});
  for (Tick t = 1; t <= 10000; t++) {
    q.Schedule(&ev, t);  // spans both the wheel and the heap overflow
  }
  EXPECT_EQ(q.LiveCount(), 1u);
  EXPECT_LT(q.InternalEntryCount(), 256u);
  EXPECT_EQ(q.RunAll(), 1u);
  EXPECT_EQ(q.now(), 10000u);
  EXPECT_FALSE(ev.scheduled());

  // Schedule/cancel churn with zero live survivors is also bounded.
  LambdaEvent other([] {});
  for (int i = 0; i < 10000; i++) {
    q.Schedule(&other, q.now() + 1 + (i % 100));
    q.Deschedule(&other);
  }
  EXPECT_EQ(q.LiveCount(), 0u);
  EXPECT_LT(q.InternalEntryCount(), 256u);
}

TEST(EventQueueTest, RandomizedDifferentialAgainstReferenceModel) {
  // Drive the queue with random schedules/cancels/runs and check every fire
  // against a brute-force reference model ordered by (when, schedule-seq).
  EventQueue q;
  Rng rng(2026);
  std::vector<int> got;
  std::vector<int> want;

  struct Ref {
    Tick when;
    uint64_t seq;
    int id;
  };
  std::vector<Ref> ref;  // live entries in the reference model
  uint64_t next_seq = 0;
  Tick model_now = 0;
  int next_id = 0;

  constexpr int kPool = 6;  // reusable events; slot i fires id 1000000 + i
  std::vector<std::unique_ptr<LambdaEvent<std::function<void()>>>> pool;
  for (int i = 0; i < kPool; i++) {
    pool.push_back(std::make_unique<LambdaEvent<std::function<void()>>>(
        [&got, i] { got.push_back(1000000 + i); }));
  }
  auto ref_min = [&]() -> size_t {
    size_t best = SIZE_MAX;
    for (size_t j = 0; j < ref.size(); j++) {
      if (best == SIZE_MAX || ref[j].when < ref[best].when ||
          (ref[j].when == ref[best].when && ref[j].seq < ref[best].seq)) {
        best = j;
      }
    }
    return best;
  };
  auto ref_erase_slot = [&](int i) {
    for (size_t j = 0; j < ref.size(); j++) {
      if (ref[j].id == 1000000 + i) {
        ref.erase(ref.begin() + j);
        return;
      }
    }
  };

  for (int step = 0; step < 4000; step++) {
    const uint64_t op = rng.NextBounded(100);
    if (op < 40) {
      const Tick when = model_now + rng.NextBounded(3 * EventQueue::kWheelTicks);
      const int id = next_id++;
      ref.push_back({when, next_seq++, id});
      q.ScheduleFn(when, [&got, id] { got.push_back(id); });
    } else if (op < 60) {
      const int i = static_cast<int>(rng.NextBounded(kPool));
      const Tick when = model_now + rng.NextBounded(3 * EventQueue::kWheelTicks);
      ref_erase_slot(i);  // a reschedule supersedes the earlier entry
      ref.push_back({when, next_seq++, 1000000 + i});
      q.Schedule(pool[i].get(), when);
    } else if (op < 70) {
      const int i = static_cast<int>(rng.NextBounded(kPool));
      ref_erase_slot(i);
      q.Deschedule(pool[i].get());
    } else if (op < 85) {
      const size_t j = ref_min();
      if (j == SIZE_MAX) {
        EXPECT_FALSE(q.RunOne());
      } else {
        want.push_back(ref[j].id);
        model_now = ref[j].when;
        ref.erase(ref.begin() + j);
        EXPECT_TRUE(q.RunOne());
        EXPECT_EQ(q.now(), model_now);
      }
    } else {
      const Tick limit = model_now + rng.NextBounded(2 * EventQueue::kWheelTicks);
      for (;;) {
        const size_t j = ref_min();
        if (j == SIZE_MAX || ref[j].when > limit) {
          break;
        }
        want.push_back(ref[j].id);
        ref.erase(ref.begin() + j);
      }
      model_now = std::max(model_now, limit);
      q.RunUntil(limit);
      EXPECT_EQ(q.now(), model_now);
    }
    ASSERT_EQ(got, want) << "diverged at step " << step;
  }
  q.RunAll();
  for (;;) {
    const size_t j = ref_min();
    if (j == SIZE_MAX) {
      break;
    }
    want.push_back(ref[j].id);
    ref.erase(ref.begin() + j);
  }
  EXPECT_EQ(got, want);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, SchedulePastTickClampsToNow) {
  // Scheduling behind now() used to compute the unsigned wheel distance
  // `when - now_`, wrap, and misfile the entry into the far-future heap,
  // where it jammed NextTick(). Past ticks must clamp to now() and fire on
  // the next dispatch.
  EventQueue q;
  q.RunUntil(100);
  int fired = 0;
  LambdaEvent ev([&] { fired++; });
  q.Schedule(&ev, 40);  // 60 ticks in the past
  EXPECT_EQ(q.NextTick(), 100u);
  EXPECT_TRUE(q.RunOne());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 100u);

  q.ScheduleFn(7, [&] { fired++; });  // one-shot path clamps identically
  EXPECT_EQ(q.NextTick(), 100u);
  q.RunAll();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueueTest, ScheduleAfterSaturatesAtTickMax) {
  constexpr Tick kMax = std::numeric_limits<Tick>::max();
  EventQueue q;
  q.RunUntil(1000);
  // now + delta would wrap into the past; the sum must saturate instead.
  LambdaEvent ev([] {});
  q.ScheduleAfter(&ev, kMax - 10);
  EXPECT_TRUE(ev.scheduled());
  EXPECT_EQ(ev.when(), kMax);
  q.Deschedule(&ev);

  // Exact fit (no overflow) lands on kMax without clamping side effects.
  LambdaEvent ev2([] {});
  q.ScheduleAfter(&ev2, kMax - 1000);
  EXPECT_EQ(ev2.when(), kMax);
  q.Deschedule(&ev2);

  int fired = 0;
  q.ScheduleFnAfter(kMax, [&] { fired++; });
  EXPECT_EQ(q.NextTick(), kMax);  // live at the top of tick space, not wrapped
  q.RunUntil(kMax);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), kMax);
}

TEST(EventQueueTest, AdvanceIfIdleNeverCrossesRunLimit) {
  // The sharded engine runs each shard one synchronization window at a time;
  // a core's quiet-advance must stop at the window edge or it would slide
  // past the barrier and observe cross-shard effects early.
  EventQueue q;
  bool within = false;
  bool beyond = true;
  q.ScheduleFn(50, [&] {
    within = q.AdvanceIfIdle(90);   // inside the limit: allowed
    beyond = q.AdvanceIfIdle(150);  // would cross RunUntil(100): refused
  });
  q.RunUntil(100);
  EXPECT_TRUE(within);
  EXPECT_FALSE(beyond);
  EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueueTest, AdvanceLimitRestoredAcrossNestedRuns) {
  EventQueue q;
  bool inner_ok = false;
  bool outer_ok = false;
  bool outer_blocked = false;
  q.ScheduleFn(10, [&] {
    // A nested windowed run imposes its own tighter ceiling...
    q.ScheduleFn(20, [&] { inner_ok = q.AdvanceIfIdle(30); });
    q.RunWhile(40, [] { return true; });
    // ...and the outer ceiling must be back in force on return.
    outer_ok = q.AdvanceIfIdle(80);
    outer_blocked = !q.AdvanceIfIdle(200);
  });
  q.RunUntil(100);
  EXPECT_TRUE(inner_ok);
  EXPECT_TRUE(outer_ok);
  EXPECT_TRUE(outer_blocked);
  EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueueTest, ClampAdvanceLimitBreaksQuietAdvanceChain) {
  // Solo fast path abort: a cross-shard Post clamps the running shard's
  // advance ceiling so its quiet-advance chain breaks at the next check
  // instead of sailing past the message's effect tick.
  EventQueue q;
  bool after_clamp = true;
  q.ScheduleFn(10, [&] {
    EXPECT_TRUE(q.AdvanceIfIdle(20));
    q.ClampAdvanceLimit(q.now());
    after_clamp = q.AdvanceIfIdle(21);
  });
  q.RunWhile(1000, [] { return true; });
  EXPECT_FALSE(after_clamp);
  EXPECT_EQ(q.now(), 20u);  // RunWhile leaves now() where execution stopped
}

TEST(EventQueueTest, WindowedExecutionMatchesMonolithicRun) {
  // Randomized differential: the same self-rescheduling event population run
  // (a) in one RunAll and (b) chopped into fixed windows the way the shard
  // engine drives each shard. Firing order and every draw from the
  // data-dependent Rng must be identical.
  constexpr Tick kWindow = 30;
  constexpr int kChains = 8;
  constexpr int kSteps = 200;
  auto run = [](bool windowed) {
    EventQueue q;
    Rng rng(0xC0FFEE);
    std::vector<std::pair<Tick, int>> log;
    std::function<void(int, int)> arm = [&](int id, int remaining) {
      if (remaining == 0) {
        return;
      }
      q.ScheduleFnAfter(1 + rng.NextBounded(3 * kWindow), [&arm, &q, &log, id, remaining] {
        log.emplace_back(q.now(), id);
        arm(id, remaining - 1);
      });
    };
    for (int id = 0; id < kChains; id++) {
      arm(id, kSteps);
    }
    if (windowed) {
      while (!q.Empty()) {
        const Tick t = q.NextTick();
        q.RunWhile(t + kWindow - 1, [] { return true; });
      }
    } else {
      q.RunAll();
    }
    return log;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(HistogramTest, ExactForSmallValues) {
  Histogram h;
  for (uint64_t v = 0; v < 16; v++) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_DOUBLE_EQ(h.mean(), 7.5);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 15u);
}

TEST(HistogramTest, QuantileBoundedRelativeError) {
  Histogram h;
  Rng rng(42);
  std::vector<uint64_t> vals;
  for (int i = 0; i < 100000; i++) {
    const uint64_t v = rng.NextRange(1, 1000000);
    vals.push_back(v);
    h.Record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const uint64_t exact = vals[static_cast<size_t>(q * (vals.size() - 1))];
    const uint64_t est = h.Quantile(q);
    const double rel = std::abs(static_cast<double>(est) - static_cast<double>(exact)) /
                       static_cast<double>(exact);
    EXPECT_LT(rel, 0.07) << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram a;
  Histogram b;
  Histogram both;
  Rng rng(7);
  for (int i = 0; i < 1000; i++) {
    const uint64_t v = rng.NextRange(0, 5000);
    ((i % 2 == 0) ? a : b).Record(v);
    both.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_EQ(a.P99(), both.P99());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) {
    sum += rng.NextExponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const uint64_t v = rng.NextRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, ParetoExceedsScale) {
  Rng rng(11);
  for (int i = 0; i < 1000; i++) {
    EXPECT_GE(rng.NextPareto(10.0, 2.0), 10.0);
  }
}

TEST(ConfigTest, ParsesTypedFlags) {
  const char* argv[] = {"prog", "--threads=64", "--load=0.8", "--name=htm", "--fast"};
  Config cfg;
  ASSERT_TRUE(cfg.ParseArgs(5, argv));
  EXPECT_EQ(cfg.GetInt("threads", 0), 64);
  EXPECT_DOUBLE_EQ(cfg.GetDouble("load", 0), 0.8);
  EXPECT_EQ(cfg.GetString("name"), "htm");
  EXPECT_TRUE(cfg.GetBool("fast", false));
  EXPECT_EQ(cfg.GetInt("missing", -3), -3);
}

TEST(ConfigTest, RejectsMalformed) {
  const char* argv[] = {"prog", "oops"};
  Config cfg;
  std::string err;
  EXPECT_FALSE(cfg.ParseArgs(2, argv, &err));
  EXPECT_NE(err.find("oops"), std::string::npos);
}

TEST(ConfigTest, MalformedValueReturnsDefaultAndRecordsError) {
  Config cfg;
  cfg.Set("threads", "12abc");  // trailing junk
  cfg.Set("load", "fast");      // not a number
  cfg.Set("size", "-5");        // must not wrap around to a huge uint
  EXPECT_EQ(cfg.GetInt("threads", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.GetDouble("load", 0.5), 0.5);
  EXPECT_EQ(cfg.GetUint("size", 9u), 9u);
  // Each failure is recorded once even when re-queried (the error path is
  // memoized too).
  EXPECT_EQ(cfg.GetInt("threads", 7), 7);
  ASSERT_EQ(cfg.parse_errors().size(), 3u);
  EXPECT_EQ(cfg.parse_errors()[0], "threads=12abc (int)");
  EXPECT_EQ(cfg.parse_errors()[1], "load=fast (double)");
  EXPECT_EQ(cfg.parse_errors()[2], "size=-5 (uint)");
}

TEST(ConfigTest, TypedAccessorsMemoizeAndSetInvalidates) {
  Config cfg;
  cfg.Set("n", "5");
  EXPECT_EQ(cfg.GetInt("n", 0), 5);
  cfg.Set("n", "9");  // must invalidate the memoized parse
  EXPECT_EQ(cfg.GetInt("n", 0), 9);
  // A key that becomes valid after Set also drops its recorded error.
  cfg.Set("x", "oops");
  EXPECT_EQ(cfg.GetInt("x", -1), -1);
  EXPECT_EQ(cfg.parse_errors().size(), 1u);
  cfg.Set("x", "0x10");
  EXPECT_EQ(cfg.GetInt("x", -1), 16);
  EXPECT_TRUE(cfg.parse_errors().empty());
}

TEST(SimulationTest, ClockConversions) {
  Simulation sim(3.0);
  EXPECT_DOUBLE_EQ(sim.CyclesToNs(30), 10.0);
  EXPECT_EQ(sim.NsToCycles(10.0), 30u);
}

TEST(JsonTest, WriterOutputRoundTripsThroughParser) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.KeyValue("name", "casc");
  w.KeyValue("count", uint64_t{42});
  w.KeyValue("ratio", 0.5);
  w.KeyValue("negative", int64_t{-7});
  w.KeyValue("on", true);
  w.Key("list");
  w.BeginArray();
  w.Value(uint64_t{1});
  w.Value("two");
  w.Value(false);
  w.EndArray();
  w.Key("empty");
  w.BeginObject();
  w.EndObject();
  w.Key("none");
  w.Null();
  w.EndObject();

  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(os.str(), &v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("name")->str_v, "casc");
  EXPECT_DOUBLE_EQ(v.Find("count")->num_v, 42.0);
  EXPECT_DOUBLE_EQ(v.Find("ratio")->num_v, 0.5);
  EXPECT_DOUBLE_EQ(v.Find("negative")->num_v, -7.0);
  EXPECT_TRUE(v.Find("on")->bool_v);
  ASSERT_TRUE(v.Find("list")->is_array());
  ASSERT_EQ(v.Find("list")->arr.size(), 3u);
  EXPECT_EQ(v.Find("list")->arr[1].str_v, "two");
  EXPECT_TRUE(v.Find("empty")->is_object());
  EXPECT_TRUE(v.Find("empty")->obj.empty());
  EXPECT_EQ(v.Find("none")->type, JsonValue::Type::kNull);
  EXPECT_EQ(v.Find("absent"), nullptr);
}

TEST(JsonTest, StringsAreEscapedAndRecovered) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 end";
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.KeyValue("s", nasty);
  w.EndObject();
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(os.str(), &v, &err)) << err;
  EXPECT_EQ(v.Find("s")->str_v, nasty);
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  // JSON has no NaN/Inf literals; the writer must emit null so the output
  // always parses.
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.KeyValue("nan", std::nan(""));
  w.KeyValue("inf", std::numeric_limits<double>::infinity());
  w.EndObject();
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(os.str(), &v, &err)) << err;
  EXPECT_EQ(v.Find("nan")->type, JsonValue::Type::kNull);
  EXPECT_EQ(v.Find("inf")->type, JsonValue::Type::kNull);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(JsonValue::Parse("{\"a\": }", &v, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(JsonValue::Parse("[1, 2", &v, &err));
  EXPECT_FALSE(JsonValue::Parse("{} trailing", &v, &err));
  EXPECT_FALSE(JsonValue::Parse("", &v, &err));
}

TEST(StatsTest, DumpJsonRoundTrips) {
  StatsRegistry stats;
  stats.Counter("b.second") = 7;
  stats.Counter("a.first") = 3;
  Histogram& h = stats.Hist("lat");
  for (uint64_t i = 1; i <= 100; i++) {
    h.Record(i);
  }
  std::ostringstream os;
  stats.DumpJson(os);

  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(os.str(), &v, &err)) << err;
  const JsonValue* counters = v.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  // std::map iteration gives sorted, deterministic key order.
  ASSERT_EQ(counters->obj.size(), 2u);
  EXPECT_EQ(counters->obj[0].first, "a.first");
  EXPECT_DOUBLE_EQ(counters->obj[0].second.num_v, 3.0);
  EXPECT_EQ(counters->obj[1].first, "b.second");

  const JsonValue* lat = v.Find("histograms")->Find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->Find("count")->num_v, 100.0);
  EXPECT_DOUBLE_EQ(lat->Find("mean")->num_v, h.mean());
  EXPECT_DOUBLE_EQ(lat->Find("min")->num_v, 1.0);
  EXPECT_DOUBLE_EQ(lat->Find("max")->num_v, 100.0);
  EXPECT_DOUBLE_EQ(lat->Find("p50")->num_v, static_cast<double>(h.P50()));
  EXPECT_DOUBLE_EQ(lat->Find("p999")->num_v, static_cast<double>(h.P999()));
  const JsonValue* buckets = lat->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  // Buckets carry the raw data: their counts must sum back to count.
  double total = 0;
  for (const JsonValue& b : buckets->arr) {
    ASSERT_TRUE(b.is_array());
    ASSERT_EQ(b.arr.size(), 2u);
    total += b.arr[1].num_v;
  }
  EXPECT_DOUBLE_EQ(total, 100.0);
}

TEST(StatsTest, EmptyRegistryDumpsValidJson) {
  StatsRegistry stats;
  std::ostringstream os;
  stats.DumpJson(os);
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(os.str(), &v, &err)) << err;
  EXPECT_TRUE(v.Find("counters")->is_object());
  EXPECT_TRUE(v.Find("histograms")->is_object());
}

}  // namespace
}  // namespace casc
