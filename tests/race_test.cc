// Tests for casc-race, the two-tier concurrency analyzer: the static
// happens-before rules (src/analysis/hb.cc — data-race, lost-wakeup,
// monitor-store-race, unsynchronized-start) and the dynamic vector-clock
// detector (src/verify/race_detector.cc) that confirms static findings on
// real executions. Every static rule gets a positive and a negative fixture;
// the dynamic tier re-runs the key ones on the simulator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/isa/assembler.h"
#include "src/verify/harness.h"
#include "src/verify/race_detector.h"

namespace casc {
namespace {

Program MustAssemble(const std::string& source) {
  AssembleResult res = Assembler::Assemble(source, 0x1000);
  EXPECT_TRUE(res.ok) << res.error;
  return res.program;
}

analysis::LintResult LintSource(const std::string& source) {
  return analysis::Lint(MustAssemble(source), analysis::LintOptions{});
}

const analysis::Diagnostic* Find(const analysis::LintResult& result,
                                 const std::string& rule_id) {
  for (const analysis::Diagnostic& d : result.diagnostics) {
    if (d.rule_id == rule_id) {
      return &d;
    }
  }
  return nullptr;
}

// Two auto-started mains storing the same value into the same shared word:
// the canonical race. Also the shape the dynamic tier must confirm.
const char kRacySource[] = R"(
t0_entry:
t0_main:
  la r28, shared
  li r29, 7
  sd r29, 0(r28)
  halt
t1_entry:
t1_main:
  la r28, shared
  li r29, 7
  sd r29, 0(r28)
  halt
.align 64
shared:
  .space 64
)";

// The full monitor/mwait handshake from tests/corpus/clean_handshake.casm:
// arm before start, guarded re-check, payload published before the flag.
const char kHandshakeSource[] = R"(
t0_entry:
t0_main:
  la r28, flag
  la r27, result
  monitor r28
  li r25, 1
  start r25
t0_wait:
  ld r26, 0(r28)
  bne r26, r0, t0_done
  mwait
  j t0_wait
t0_done:
  ld r24, 0(r27)
  halt
t1_entry:
  la r28, flag
  la r27, result
  li r29, 42
  sd r29, 0(r27)
  li r29, 1
  sd r29, 0(r28)
  halt
.align 64
flag:
  .space 64
result:
  .space 64
)";

// ---------------------------------------------------------------------------
// Static tier: data-race

TEST(StaticRace, ConcurrentStoresToSharedWordRace) {
  const analysis::LintResult r = LintSource(kRacySource);
  const analysis::Diagnostic* d = Find(r, analysis::rules::kDataRace);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, analysis::Severity::kError);
  EXPECT_NE(d->message.find("t0 store"), std::string::npos);
  EXPECT_NE(d->message.find("t1 store"), std::string::npos);
  EXPECT_FALSE(r.ok());
}

TEST(StaticRace, DisjointStoresAreClean) {
  const analysis::LintResult r = LintSource(R"(
t0_entry:
t0_main:
  la r28, a_word
  li r29, 7
  sd r29, 0(r28)
  halt
t1_entry:
t1_main:
  la r28, b_word
  li r29, 7
  sd r29, 0(r28)
  halt
.align 64
a_word:
  .space 64
b_word:
  .space 64
)");
  EXPECT_EQ(Find(r, analysis::rules::kDataRace), nullptr);
  EXPECT_TRUE(r.ok());
}

TEST(StaticRace, AtomicRmwPairIsExempt) {
  const analysis::LintResult r = LintSource(R"(
t0_entry:
t0_main:
  la r28, ctr
  li r29, 1
  amoadd r3, r28, r29
  halt
t1_entry:
t1_main:
  la r28, ctr
  li r29, 1
  amoadd r3, r28, r29
  halt
.align 64
ctr:
  .space 64
)");
  EXPECT_EQ(Find(r, analysis::rules::kDataRace), nullptr);
  EXPECT_TRUE(r.ok());
}

TEST(StaticRace, AtomicVersusPlainStoreStillRaces) {
  const analysis::LintResult r = LintSource(R"(
t0_entry:
t0_main:
  la r28, ctr
  li r29, 1
  amoadd r3, r28, r29
  halt
t1_entry:
t1_main:
  la r28, ctr
  li r29, 5
  sd r29, 0(r28)
  halt
.align 64
ctr:
  .space 64
)");
  ASSERT_NE(Find(r, analysis::rules::kDataRace), nullptr);
  EXPECT_FALSE(r.ok());
}

TEST(StaticRace, LintAllowSuppressesSeededRace) {
  // The diagnostic lands on the lower-address store (t0's), so the
  // suppression there silences the pair.
  std::string source = kRacySource;
  const std::string site = "  sd r29, 0(r28)\n  halt\nt1_entry:";
  const size_t at = source.find(site);
  ASSERT_NE(at, std::string::npos);
  source.replace(at, site.size(),
                 "  sd r29, 0(r28) ; lint-allow: data-race\n  halt\nt1_entry:");
  const analysis::LintResult r =
      analysis::Lint(MustAssemble(source), analysis::LintOptions{});
  EXPECT_EQ(Find(r, analysis::rules::kDataRace), nullptr);
  EXPECT_TRUE(r.ok());
}

// ---------------------------------------------------------------------------
// Static tier: lost-wakeup

TEST(StaticRace, LoadBeforeArmWithoutReloadIsLostWakeup) {
  const analysis::LintResult r = LintSource(R"(
  li r1, 0x2000
  ld r2, 0(r1)
  monitor r1
  mwait
  halt
)");
  const analysis::Diagnostic* d = Find(r, analysis::rules::kLostWakeup);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, analysis::Severity::kWarning);
  EXPECT_EQ(d->line, 5);  // reported at the mwait
}

TEST(StaticRace, ReloadAfterArmClosesTheWindow) {
  const analysis::LintResult r = LintSource(R"(
  li r1, 0x2000
  ld r2, 0(r1)
  monitor r1
  ld r2, 0(r1)
  mwait
  halt
)");
  EXPECT_EQ(Find(r, analysis::rules::kLostWakeup), nullptr);
}

TEST(StaticRace, ArmBeforeFirstLoadIsClean) {
  const analysis::LintResult r = LintSource(R"(
  li r1, 0x2000
  monitor r1
  ld r2, 0(r1)
  mwait
  halt
)");
  EXPECT_EQ(Find(r, analysis::rules::kLostWakeup), nullptr);
}

// ---------------------------------------------------------------------------
// Static tier: monitor-store-race

TEST(StaticRace, TwoUnorderedReleasesIntoWatchedLineWarn) {
  const analysis::LintResult r = LintSource(R"(
t0_entry:
t0_main:
  la r28, flag
  li r29, 1
  sd r29, 0(r28)
  halt
t1_entry:
t1_main:
  la r28, flag
  li r29, 2
  sd r29, 0(r28)
  halt
t2_entry:
t2_main:
  la r28, flag
  monitor r28
  mwait
  halt
.align 64
flag:
  .space 64
)");
  const analysis::Diagnostic* d = Find(r, analysis::rules::kMonitorStoreRace);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, analysis::Severity::kWarning);
  // Stores into a watched line are the protocol's releases, not data races.
  EXPECT_EQ(Find(r, analysis::rules::kDataRace), nullptr);
}

TEST(StaticRace, SingleReleaseIntoWatchedLineIsClean) {
  const analysis::LintResult r = LintSource(R"(
t0_entry:
t0_main:
  la r28, flag
  li r29, 1
  sd r29, 0(r28)
  halt
t2_entry:
t2_main:
  la r28, flag
  monitor r28
  mwait
  halt
.align 64
flag:
  .space 64
)");
  EXPECT_EQ(Find(r, analysis::rules::kMonitorStoreRace), nullptr);
  EXPECT_TRUE(r.ok());
}

// ---------------------------------------------------------------------------
// Static tier: unsynchronized-start

TEST(StaticRace, ParentReadOfChildOutputWithoutSyncIsFlagged) {
  const analysis::LintResult r = LintSource(R"(
t0_entry:
t0_main:
  la r28, out
  li r25, 1
  start r25
  ld r26, 0(r28)
  halt
t1_entry:
  la r28, out
  li r29, 5
  sd r29, 0(r28)
  halt
.align 64
out:
  .space 64
)");
  const analysis::Diagnostic* d = Find(r, analysis::rules::kUnsyncStart);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, analysis::Severity::kError);
  EXPECT_FALSE(r.ok());
}

TEST(StaticRace, StopClosesTheParentChildWindow) {
  const analysis::LintResult r = LintSource(R"(
t0_entry:
t0_main:
  la r28, out
  li r25, 1
  start r25
  stop r25
  ld r26, 0(r28)
  halt
t1_entry:
  la r28, out
  li r29, 5
  sd r29, 0(r28)
  halt
.align 64
out:
  .space 64
)");
  EXPECT_EQ(Find(r, analysis::rules::kUnsyncStart), nullptr);
  EXPECT_EQ(Find(r, analysis::rules::kDataRace), nullptr);
  EXPECT_TRUE(r.ok());
}

TEST(StaticRace, ParentWritesBeforeStartAreOrdered) {
  // start is a release of everything the parent did so far: the child may
  // read it freely.
  const analysis::LintResult r = LintSource(R"(
t0_entry:
t0_main:
  la r28, in_word
  li r29, 9
  sd r29, 0(r28)
  li r25, 1
  start r25
  halt
t1_entry:
  la r28, in_word
  ld r26, 0(r28)
  halt
.align 64
in_word:
  .space 64
)");
  EXPECT_EQ(Find(r, analysis::rules::kDataRace), nullptr);
  EXPECT_EQ(Find(r, analysis::rules::kUnsyncStart), nullptr);
  EXPECT_TRUE(r.ok());
}

TEST(StaticRace, MonitorHandshakeIsCleanOnBothSides) {
  const analysis::LintResult r = LintSource(kHandshakeSource);
  EXPECT_EQ(Find(r, analysis::rules::kDataRace), nullptr);
  EXPECT_EQ(Find(r, analysis::rules::kUnsyncStart), nullptr);
  EXPECT_EQ(Find(r, analysis::rules::kLostWakeup), nullptr);
  EXPECT_EQ(Find(r, analysis::rules::kMonitorStoreRace), nullptr);
  EXPECT_TRUE(r.ok());
}

// ---------------------------------------------------------------------------
// Dynamic tier: the vector-clock confirmer on real executions

struct DynamicResult {
  bool clean = false;
  std::vector<verify::RaceReport> reports;
  verify::Snapshot snapshot;
};

DynamicResult RunWithDetector(const std::string& source) {
  const Program p = MustAssemble(source);
  MachineConfig cfg;
  cfg.num_cores = 1;
  const std::vector<verify::ThreadSpec> specs =
      verify::ParseThreadSpecs(p, cfg.hwt.threads_per_core);
  EXPECT_FALSE(specs.empty());
  verify::SimRun run(p, specs, cfg, /*predecode=*/true);
  verify::RaceDetector detector(cfg.hwt.threads_per_core);
  run.machine().SetConcurrencyObserver(&detector);
  DynamicResult out;
  out.snapshot = run.Run(1'000'000);
  EXPECT_TRUE(out.snapshot.quiesced);
  out.clean = detector.clean();
  out.reports.assign(detector.reports().begin(), detector.reports().end());
  return out;
}

TEST(DynamicRace, ConfirmsTheStaticDataRaceFixture) {
  const DynamicResult r = RunWithDetector(kRacySource);
  EXPECT_FALSE(r.clean);
  ASSERT_FALSE(r.reports.empty());
  const Program p = MustAssemble(kRacySource);
  const Addr shared = p.Symbol("shared");
  EXPECT_GE(r.reports.front().addr, shared);
  EXPECT_LT(r.reports.front().addr, shared + 8);
  EXPECT_TRUE(r.reports.front().prev.is_write);
  EXPECT_TRUE(r.reports.front().cur.is_write);
  EXPECT_NE(r.reports.front().prev.ptid, r.reports.front().cur.ptid);
}

TEST(DynamicRace, HandshakeRunsCleanAndDeliversThePayload) {
  const DynamicResult r = RunWithDetector(kHandshakeSource);
  EXPECT_TRUE(r.clean) << verify::RaceDetector::Format(r.reports.front(), nullptr);
  ASSERT_GT(r.snapshot.threads.size(), 0u);
  EXPECT_EQ(r.snapshot.threads[0].arch.gpr[24], 42u);  // payload observed
}

TEST(DynamicRace, StartPublishesParentWritesToTheChild) {
  const DynamicResult r = RunWithDetector(R"(
t0_entry:
t0_main:
  la r28, in_word
  li r29, 9
  sd r29, 0(r28)
  li r25, 1
  start r25
  halt
t1_entry:
  la r28, in_word
  ld r26, 0(r28)
  halt
.align 64
in_word:
  .space 64
)");
  EXPECT_TRUE(r.clean) << verify::RaceDetector::Format(r.reports.front(), nullptr);
}

TEST(DynamicRace, AtomicIncrementsAreExempt) {
  const DynamicResult r = RunWithDetector(R"(
t0_entry:
t0_main:
  la r28, ctr
  li r29, 1
  amoadd r3, r28, r29
  halt
t1_entry:
t1_main:
  la r28, ctr
  li r29, 1
  amoadd r3, r28, r29
  halt
.align 64
ctr:
  .space 64
)");
  EXPECT_TRUE(r.clean) << verify::RaceDetector::Format(r.reports.front(), nullptr);
}

TEST(DynamicRace, FormatNamesBothSites) {
  const DynamicResult r = RunWithDetector(kRacySource);
  ASSERT_FALSE(r.reports.empty());
  const Program p = MustAssemble(kRacySource);
  const std::string text = verify::RaceDetector::Format(r.reports.front(), &p);
  EXPECT_NE(text.find("race on"), std::string::npos);
  EXPECT_NE(text.find("line"), std::string::npos);  // symbolized via Program
}

}  // namespace
}  // namespace casc
