// Tests for the static analyzer (src/analysis/): one minimal violating
// program per lint rule asserting the reported rule_id and source line, the
// dataflow properties the rules depend on, suppression comments, and a clean
// program asserting zero diagnostics. Also lints every shipped example.
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/analysis/cfg.h"
#include "src/analysis/decoder.h"
#include "src/analysis/lint.h"
#include "src/isa/assembler.h"
#include "src/isa/isa.h"

namespace casc {
namespace analysis {
namespace {

LintResult LintSource(const std::string& source, LintOptions options = {}) {
  const AssembleResult assembled = Assembler::Assemble(source);
  EXPECT_TRUE(assembled.ok) << assembled.error;
  return Lint(assembled.program, options);
}

// Returns the first diagnostic matching `rule_id`, or nullptr.
const Diagnostic* Find(const LintResult& result, const std::string& rule_id) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.rule_id == rule_id) {
      return &d;
    }
  }
  return nullptr;
}

TEST(LintRules, MwaitWithNoMonitorArmed) {
  const LintResult r = LintSource("mwait\nhalt\n");
  const Diagnostic* d = Find(r, rules::kMwaitNoMonitor);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 1);
  EXPECT_FALSE(r.ok());
}

TEST(LintRules, MonitorOnAnyPathSatisfiesMwait) {
  // May-analysis: one arming path is enough (the other path would block, but
  // that is a dynamic property the lint deliberately leaves to the runtime).
  const LintResult r = LintSource(
      "  li a1, 0x9000\n"
      "  beq a0, r0, armed\n"
      "  j wait\n"
      "armed:\n"
      "  monitor a1\n"
      "wait:\n"
      "  mwait\n"
      "  halt\n");
  EXPECT_EQ(Find(r, rules::kMwaitNoMonitor), nullptr);
}

TEST(LintRules, MonitorBeforeMwaitIsClean) {
  const LintResult r = LintSource("  li a1, 0x9000\n  monitor a1\n  mwait\n  halt\n");
  EXPECT_TRUE(r.clean()) << FormatDiagnostic(r.diagnostics[0]);
}

TEST(LintRules, RpullWithoutDominatingStop) {
  const LintResult r = LintSource("  li a0, 3\n  rpull a1, a0, pc\n  halt\n");
  const Diagnostic* d = Find(r, rules::kRemoteRegNoStop);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 2);
}

TEST(LintRules, RpushAfterStopIsCleanUntilRestart) {
  const LintResult r = LintSource(
      "  li a0, 3\n"
      "  stop a0\n"
      "  rpull a1, a0, pc\n"
      "  rpush a0, pc, a1\n"
      "  start a0\n"
      "  halt\n");
  EXPECT_EQ(Find(r, rules::kRemoteRegNoStop), nullptr);

  // After `start`, the vtid is no longer known-stopped.
  const LintResult r2 = LintSource(
      "  li a0, 3\n"
      "  stop a0\n"
      "  start a0\n"
      "  rpull a1, a0, pc\n"
      "  halt\n");
  const Diagnostic* d = Find(r2, rules::kRemoteRegNoStop);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 4);
}

TEST(LintRules, StopOnOnePathOnlyStillWarns) {
  // Must-analysis: the stop has to dominate the rpull.
  const LintResult r = LintSource(
      "  li a0, 3\n"
      "  beq a1, r0, pull\n"
      "  stop a0\n"
      "pull:\n"
      "  rpull a2, a0, pc\n"
      "  halt\n");
  ASSERT_NE(Find(r, rules::kRemoteRegNoStop), nullptr);
}

TEST(LintRules, PrivilegedCsrWriteInUserMode) {
  const LintResult r = LintSource(
      "  li a5, 0\n"
      "  csrwr mode, a5\n"
      "  csrwr prio, a5\n"
      "  halt\n");
  const Diagnostic* d = Find(r, rules::kPrivilegedInUser);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 3);
}

TEST(LintRules, UserModeEntryFlagsThreadManagement) {
  LintOptions options;
  options.flow.entry_supervisor = false;
  const LintResult r = LintSource("  li a0, 1\n  start a0\n  halt\n", options);
  const Diagnostic* d = Find(r, rules::kPrivilegedInUser);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 2);
}

TEST(LintRules, SecretKeyCsrsAreUserWritable) {
  // §3.2: selfkey/authkey are deliberately writable from user mode.
  LintOptions options;
  options.flow.entry_supervisor = false;
  const LintResult r =
      LintSource("  li a0, 42\n  csrwr selfkey, a0\n  csrwr authkey, a0\n  halt\n", options);
  EXPECT_EQ(Find(r, rules::kPrivilegedInUser), nullptr);
}

TEST(LintRules, ModeMergeTaintsBothPaths) {
  // One path drops to user mode; after the merge the CSR write may execute in
  // user mode and must be flagged.
  const LintResult r = LintSource(
      "  beq a0, r0, stay\n"
      "  li a5, 0\n"
      "  csrwr mode, a5\n"
      "stay:\n"
      "  csrwr prio, r0\n"
      "  halt\n");
  const Diagnostic* d = Find(r, rules::kPrivilegedInUser);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 5);
}

TEST(LintRules, DivWithoutEdpIsTripleFaultAnalog) {
  const LintResult r = LintSource("  li a0, 8\n  li a1, 2\n  div a2, a0, a1\n  halt\n");
  const Diagnostic* d = Find(r, rules::kFaultNoEdp);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 3);
}

TEST(LintRules, InstalledEdpSilencesFaultRule) {
  const LintResult r = LintSource(
      "  li a0, 0x2000\n"
      "  csrwr edp, a0\n"
      "  li a1, 2\n"
      "  div a2, a0, a1\n"
      "  halt\n");
  EXPECT_EQ(Find(r, rules::kFaultNoEdp), nullptr);
}

TEST(LintRules, EdpOnOnePathOnlyStillWarns) {
  // Must-analysis: §3's hazard is a fault on ANY path with no descriptor
  // chain.
  const LintResult r = LintSource(
      "  beq a0, r0, skip\n"
      "  li a1, 0x2000\n"
      "  csrwr edp, a1\n"
      "skip:\n"
      "  li a2, 2\n"
      "  div a3, a2, a2\n"
      "  halt\n");
  ASSERT_NE(Find(r, rules::kFaultNoEdp), nullptr);
}

TEST(LintRules, WritingZeroEdpDoesNotCount) {
  const LintResult r = LintSource(
      "  csrwr edp, r0\n"
      "  li a1, 2\n"
      "  div a2, a1, a1\n"
      "  halt\n");
  ASSERT_NE(Find(r, rules::kFaultNoEdp), nullptr);
}

TEST(LintRules, UnreachableCodeAfterHalt) {
  const LintResult r = LintSource("  halt\n  addi a0, a0, 1\n  halt\n");
  const Diagnostic* d = Find(r, rules::kUnreachableCode);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 2);
}

TEST(LintRules, AddressTakenCodeIsReachable) {
  // `.word handler` materializes the handler address: the paper's thread
  // creation installs entry pcs via TDT entries or `rpush pc` (§3.1), so
  // address-taken code is treated as a live entry point.
  const LintResult r = LintSource(
      "  halt\n"
      "handler:\n"
      "  halt\n"
      "table:\n"
      "  .word handler\n");
  EXPECT_EQ(Find(r, rules::kUnreachableCode), nullptr);
}

TEST(LintRules, FallthroughOffImage) {
  const LintResult r = LintSource("  addi a0, a0, 1\n  addi a0, a0, 2\n");
  const Diagnostic* d = Find(r, rules::kFallthroughOffImage);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 2);
}

TEST(LintRules, FallthroughIntoData) {
  const LintResult r = LintSource(
      "  addi a0, a0, 1\n"
      "buf:\n"
      "  .word 7\n");
  const Diagnostic* d = Find(r, rules::kFallthroughOffImage);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 1);
}

TEST(LintRules, BranchTargetOutsideImage) {
  const LintResult r = LintSource("  beq a0, a1, 0x8000\n  halt\n");
  const Diagnostic* d = Find(r, rules::kTargetOutOfImage);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 1);
}

TEST(LintRules, BranchIntoDataRange) {
  const LintResult r = LintSource(
      "  beq a0, a1, buf\n"
      "  halt\n"
      "buf:\n"
      "  .word 7\n");
  const Diagnostic* d = Find(r, rules::kTargetOutOfImage);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("data"), std::string::npos);
}

TEST(LintRules, StartVtidBeyondTdtCapacity) {
  const LintResult r = LintSource("  li a0, 99\n  start a0\n  halt\n");
  const Diagnostic* d = Find(r, rules::kVtidOutOfRange);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 2);
}

TEST(LintRules, InstalledTdtSizeRaisesCapacity) {
  // `csrwr tdtsize` with a known constant becomes the new bound.
  const LintResult r = LintSource(
      "  li a0, 128\n"
      "  csrwr tdtsize, a0\n"
      "  li a1, 99\n"
      "  start a1\n"
      "  halt\n");
  EXPECT_EQ(Find(r, rules::kVtidOutOfRange), nullptr);
}

TEST(LintRules, TdtCapacityOptionIsRespected) {
  LintOptions options;
  options.flow.tdt_capacity = 256;
  const LintResult r = LintSource("  li a0, 99\n  start a0\n  halt\n", options);
  EXPECT_EQ(Find(r, rules::kVtidOutOfRange), nullptr);
}

TEST(LintRules, IllegalOpcodeWord) {
  // Hand-build an image: the assembler cannot emit an undecodable word, but a
  // raw image (or a miscompiled one) can contain any bits.
  Program p;
  p.base = 0x1000;
  p.bytes.resize(8);
  const uint32_t bad = 0xffffffffu;  // opcode field 63 >= Opcode::kCount
  const uint32_t halt = Encode({Opcode::kHalt, 0, 0, 0, 0});
  std::memcpy(&p.bytes[0], &bad, 4);
  std::memcpy(&p.bytes[4], &halt, 4);
  const LintResult r = Lint(p);
  const Diagnostic* d = Find(r, rules::kIllegalOpcode);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->addr, 0x1000u);
}

TEST(LintRules, IndirectJalrIsANote) {
  const LintResult r = LintSource("  jalr a0, a1, 0\n");
  const Diagnostic* d = Find(r, rules::kIndirectJalr);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_TRUE(r.ok());  // notes are not errors

  LintOptions quiet;
  quiet.include_notes = false;
  const LintResult r2 = LintSource("  jalr a0, a1, 0\n", quiet);
  EXPECT_EQ(Find(r2, rules::kIndirectJalr), nullptr);
}

TEST(LintRules, PlainRetIsNotFlaggedIndirect) {
  // `jal` models a call with a fall-through return site; `ret` ends the
  // callee without a conservative-flow note.
  const LintResult r = LintSource(
      "  call f\n"
      "  halt\n"
      "f:\n"
      "  addi a0, a0, 1\n"
      "  ret\n");
  EXPECT_EQ(Find(r, rules::kIndirectJalr), nullptr);
  EXPECT_EQ(Find(r, rules::kUnreachableCode), nullptr);
}

TEST(LintAllow, SuppressesNamedRule) {
  const LintResult r = LintSource("  mwait  ; lint-allow: mwait-no-monitor\n  halt\n");
  EXPECT_EQ(Find(r, rules::kMwaitNoMonitor), nullptr);
  EXPECT_TRUE(r.ok());
}

TEST(LintAllow, StarSuppressesEverythingOnTheLine) {
  const LintResult r = LintSource("  mwait  # lint-allow: *\n  halt\n");
  EXPECT_TRUE(r.clean());
}

TEST(LintAllow, DoesNotSuppressOtherLines) {
  const LintResult r = LintSource(
      "  mwait  ; lint-allow: mwait-no-monitor\n"
      "  mwait\n"
      "  halt\n");
  const Diagnostic* d = Find(r, rules::kMwaitNoMonitor);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 2);
}

TEST(LintClean, FullFeatureProgramHasZeroDiagnostics) {
  // Exercises every checked construct the *right* way: EDP installed before
  // faulting ops, monitor armed before mwait, stop dominating rpull/rpush,
  // vtids in range, supervisor mode throughout, all paths halt.
  const LintResult r = LintSource(
      "main:\n"
      "  li a0, 0x2000\n"
      "  csrwr edp, a0\n"
      "  li a1, 0x3000\n"
      "  monitor a1\n"
      "  mwait\n"
      "  li a2, 3\n"
      "  stop a2\n"
      "  rpull a3, a2, pc\n"
      "  rpush a2, pc, a3\n"
      "  start a2\n"
      "  li a4, 8\n"
      "  div a5, a0, a4\n"
      "  beq a3, r0, done\n"
      "  addi a5, a5, 1\n"
      "done:\n"
      "  halt\n");
  EXPECT_TRUE(r.clean()) << FormatDiagnostic(r.diagnostics[0]);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.warnings, 0u);
  EXPECT_EQ(r.notes, 0u);
}

TEST(LintIntegration, ViolationsFixtureTriggersAtLeastEightRules) {
  std::ifstream in(std::string(CASC_TESTDATA_DIR) + "/lint_violations.casm");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const LintResult r = LintSource(ss.str());
  std::set<std::string> rule_ids;
  for (const Diagnostic& d : r.diagnostics) {
    rule_ids.insert(d.rule_id);
  }
  EXPECT_GE(rule_ids.size(), 8u);
  EXPECT_FALSE(r.ok());
  for (const char* rule :
       {rules::kMwaitNoMonitor, rules::kRemoteRegNoStop, rules::kPrivilegedInUser,
        rules::kFaultNoEdp, rules::kUnreachableCode, rules::kFallthroughOffImage,
        rules::kTargetOutOfImage, rules::kVtidOutOfRange, rules::kIndirectJalr}) {
    EXPECT_EQ(rule_ids.count(rule), 1u) << "missing rule " << rule;
  }
}

TEST(LintIntegration, AllShippedExamplesLintClean) {
  for (const char* name : {"fib.casm", "pingpong.casm", "syscall.casm"}) {
    std::ifstream in(std::string(CASC_EXAMPLES_DIR) + "/" + name);
    ASSERT_TRUE(in.good()) << name;
    std::ostringstream ss;
    ss << in.rdbuf();
    const LintResult r = LintSource(ss.str());
    EXPECT_TRUE(r.clean()) << name << ": " << FormatDiagnostic(r.diagnostics[0]);
  }
}

TEST(LintIntegration, JsonOutputIsWellFormed) {
  const LintResult r = LintSource("mwait\nhalt\n");
  const std::string json = DiagnosticsToJson(r);
  EXPECT_NE(json.find("\"rule_id\":\"mwait-no-monitor\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// --- CFG / decoder structural tests ---------------------------------------

TEST(Decoder, SkipsDataRangesAndRecordsLines) {
  const AssembleResult a = Assembler::Assemble(
      "  li a0, 1\n"
      "  halt\n"
      "tbl:\n"
      "  .word 0xdeadbeef\n");
  ASSERT_TRUE(a.ok);
  const DecodedProgram d = DecodeProgram(a.program);
  for (const DecodedInst& di : d.insts) {
    EXPECT_FALSE(d.InData(di.addr));
  }
  EXPECT_EQ(d.insts.front().line, 1);
  EXPECT_EQ(a.program.data_ranges.size(), 1u);
  EXPECT_EQ(a.program.data_ranges[0].elem, 8u);
}

TEST(Cfg, JPseudoIsUnconditional) {
  // `j` lowers to `beq r0, r0`: the fall-through must NOT be an edge, so the
  // next instruction is unreachable.
  const AssembleResult a = Assembler::Assemble(
      "  j out\n"
      "  addi a0, a0, 1\n"
      "out:\n"
      "  halt\n");
  ASSERT_TRUE(a.ok);
  const LintResult r = Lint(a.program);
  const Diagnostic* d = Find(r, rules::kUnreachableCode);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 2);
}

TEST(Cfg, EntrySymbolOptionMovesTheRoot) {
  LintOptions options;
  options.entry_symbol = "alt";
  const LintResult r = LintSource(
      "  addi a0, a0, 1\n"
      "  halt\n"
      "alt:\n"
      "  halt\n",
      options);
  // Only the default-entry prologue is now unreachable.
  const Diagnostic* d = Find(r, rules::kUnreachableCode);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 1);
}

TEST(Cfg, UnknownEntrySymbolIsAnError) {
  LintOptions options;
  options.entry_symbol = "nope";
  const LintResult r = LintSource("  halt\n", options);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace analysis
}  // namespace casc
