// Workload generator tests: distribution means/shapes, Poisson arrivals, and
// the latency recorder.
#include <gtest/gtest.h>

#include "src/sim/simulation.h"
#include "src/workload/distributions.h"
#include "src/workload/loadgen.h"

namespace casc {
namespace {

double SampledMean(const ServiceDist& d, int n = 200000) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < n; i++) {
    sum += static_cast<double>(d.Sample(rng));
  }
  return sum / n;
}

TEST(DistributionsTest, MeansMatch) {
  EXPECT_NEAR(SampledMean(ServiceDist::Fixed(1000)), 1000, 1);
  EXPECT_NEAR(SampledMean(ServiceDist::Exponential(1000)), 1000, 20);
  EXPECT_NEAR(SampledMean(ServiceDist::Parse("bimodal", 1000)), 1000, 30);
  // Heavy tails converge slowly; loose bound.
  EXPECT_NEAR(SampledMean(ServiceDist::Pareto(1000, 2.5), 500000), 1000, 120);
}

TEST(DistributionsTest, BimodalHasTwoModes) {
  const ServiceDist d = ServiceDist::Parse("bimodal", 1000);
  Rng rng(7);
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  int longs = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    const Tick v = d.Sample(rng);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    longs += v > 1000 ? 1 : 0;
  }
  EXPECT_EQ(lo, 500u);
  EXPECT_GT(hi, 40000u);
  EXPECT_NEAR(static_cast<double>(longs) / n, 0.01, 0.002);
}

TEST(DistributionsTest, ParetoTailHeavierThanExponential) {
  Rng rng(3);
  const ServiceDist exp = ServiceDist::Exponential(1000);
  const ServiceDist par = ServiceDist::Pareto(1000, 1.5);
  Histogram he;
  Histogram hp;
  for (int i = 0; i < 200000; i++) {
    he.Record(exp.Sample(rng));
    hp.Record(par.Sample(rng));
  }
  EXPECT_GT(hp.P999(), he.P999());
}

TEST(DistributionsTest, SamplesArePositive) {
  Rng rng(5);
  for (const char* name : {"fixed", "exp", "bimodal", "pareto", "lognormal"}) {
    const ServiceDist d = ServiceDist::Parse(name, 100);
    for (int i = 0; i < 1000; i++) {
      EXPECT_GE(d.Sample(rng), 1u) << name;
    }
  }
}

TEST(LoadgenTest, PoissonArrivalRate) {
  Simulation sim;
  uint64_t arrivals = 0;
  OpenLoopSource src(sim, /*mean gap=*/1000, ServiceDist::Fixed(10),
                     [&](uint64_t, Tick) { arrivals++; });
  src.StartAt(0);
  sim.queue().RunUntil(10'000'000);
  src.Stop();
  EXPECT_NEAR(static_cast<double>(arrivals), 10000.0, 400.0);
}

TEST(LoadgenTest, LimitStopsEmission) {
  Simulation sim;
  uint64_t arrivals = 0;
  OpenLoopSource src(sim, 100, ServiceDist::Fixed(10), [&](uint64_t, Tick) { arrivals++; });
  src.set_limit(50);
  src.StartAt(0);
  sim.queue().RunAll();
  EXPECT_EQ(arrivals, 50u);
}

TEST(LatencyRecorderTest, TracksSojournAndSlowdown) {
  LatencyRecorder rec;
  rec.OnSend(1, 1000, 100);
  rec.OnSend(2, 1000, 100);
  rec.OnReceive(1, 1200);   // sojourn 200, slowdown 2
  EXPECT_EQ(rec.completed(), 1u);
  EXPECT_EQ(rec.inflight(), 1u);
  EXPECT_EQ(rec.latency().max(), 200u);
  EXPECT_EQ(rec.slowdown().max(), 2u);
  rec.OnReceive(999, 2000);  // unknown id ignored
  EXPECT_EQ(rec.completed(), 1u);
}

}  // namespace
}  // namespace casc
