// Tests for the kernel scheduler runtime (§4's "role of the OS scheduler"):
// placement onto free hardware threads, priority policy, and cross-core
// migration of register images.
#include <gtest/gtest.h>

#include "src/cpu/machine.h"
#include "src/dev/apic_timer.h"
#include "src/runtime/kscheduler.h"

namespace casc {
namespace {

class KschedulerTest : public ::testing::Test {
 protected:
  KschedulerTest() {
    MachineConfig cfg;
    cfg.num_cores = 2;
    cfg.hwt.threads_per_core = 16;
    machine_ = std::make_unique<Machine>(cfg);
    // Worker program: counts in a0 forever (a1 selects nothing; the image is
    // shared by all soft threads).
    machine_->LoadSource(0, 15,
                         "work_entry:\n"
                         "  addi a0, a0, 1\n"
                         "  j work_entry\n",
                         /*supervisor=*/false, "work_entry", 0, 0x5000);
    entry_ = 0x5000;
    SchedulerConfig scfg;
    sched_ = std::make_unique<KernelScheduler>(*machine_, 0, 0, scfg);
    ApicTimerConfig tcfg;
    tcfg.period = 5000;
    tcfg.counter_addr = scfg.timer_counter;
    timer_ = std::make_unique<ApicTimer>(machine_->sim(), machine_->mem(), tcfg);
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<KernelScheduler> sched_;
  std::unique_ptr<ApicTimer> timer_;
  Addr entry_ = 0;
};

TEST_F(KschedulerTest, PlacesSubmittedThreads) {
  sched_->AddWorkerPool(0, 1, 4);
  sched_->Install();
  timer_->StartTimer();
  machine_->RunFor(1000);
  const uint64_t id0 = sched_->Submit(entry_, 100);
  const uint64_t id1 = sched_->Submit(entry_, 200);
  machine_->RunFor(20000);
  EXPECT_EQ(sched_->placements(), 2u);
  const Ptid p0 = sched_->LocationOf(id0);
  const Ptid p1 = sched_->LocationOf(id1);
  ASSERT_NE(p0, kInvalidPtid);
  ASSERT_NE(p1, kInvalidPtid);
  EXPECT_NE(p0, p1);
  // Both run and count upward from their seeded a0.
  EXPECT_GT(machine_->threads().thread(p0).ReadGpr(10), 100u);
  EXPECT_GT(machine_->threads().thread(p1).ReadGpr(10), 200u);
}

TEST_F(KschedulerTest, OverflowWaitsForFreeSlot) {
  sched_->AddWorkerPool(0, 1, 2);
  sched_->Install();
  timer_->StartTimer();
  machine_->RunFor(1000);
  sched_->Submit(entry_, 1);
  sched_->Submit(entry_, 2);
  const uint64_t id2 = sched_->Submit(entry_, 3);
  machine_->RunFor(30000);
  EXPECT_EQ(sched_->placements(), 2u);
  EXPECT_EQ(sched_->LocationOf(id2), kInvalidPtid);  // no slot: still pending
}

TEST_F(KschedulerTest, BalancesAcrossCoresByMigration) {
  // Only core 0 has a pool at first; four threads pile up there. Adding a
  // core-1 pool lets the balancer migrate register images across cores.
  sched_->AddWorkerPool(0, 1, 8);
  sched_->Install();
  timer_->StartTimer();
  machine_->RunFor(1000);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; i++) {
    ids.push_back(sched_->Submit(entry_, 1000 + static_cast<uint64_t>(i)));
  }
  machine_->RunFor(30000);
  EXPECT_EQ(sched_->placements(), 4u);
  sched_->AddWorkerPool(1, 1, 8);
  machine_->RunFor(100000);
  EXPECT_GE(sched_->migrations(), 1u);
  // At least one thread now lives on core 1, still counting from where its
  // image left off.
  uint32_t on_core1 = 0;
  for (uint64_t id : ids) {
    const Ptid loc = sched_->LocationOf(id);
    ASSERT_NE(loc, kInvalidPtid);
    if (machine_->threads().CoreOf(loc) == 1) {
      on_core1++;
      const uint64_t mid = machine_->threads().thread(loc).ReadGpr(10);
      EXPECT_GT(mid, 1000u);
      machine_->RunFor(20000);
      EXPECT_GT(machine_->threads().thread(loc).ReadGpr(10), mid);  // still alive
    }
  }
  EXPECT_GE(on_core1, 1u);
}

TEST_F(KschedulerTest, PriorityPolicyApplied) {
  // Oversubscribe the SMT slots so the weighted share matters: one prio-6
  // image competes with five prio-1 images.
  sched_->AddWorkerPool(0, 1, 8);
  sched_->Install();
  timer_->StartTimer();
  machine_->RunFor(1000);
  const uint64_t hi = sched_->Submit(entry_, 0, 0, /*prio=*/6);
  std::vector<uint64_t> lows;
  for (int i = 0; i < 5; i++) {
    lows.push_back(sched_->Submit(entry_, 0, 0, /*prio=*/1));
  }
  machine_->RunFor(300000);
  const Ptid hp = sched_->LocationOf(hi);
  ASSERT_NE(hp, kInvalidPtid);
  EXPECT_EQ(machine_->threads().thread(hp).arch().prio, 6u);
  const uint64_t hi_count = machine_->threads().thread(hp).ReadGpr(10);
  uint64_t lo_total = 0;
  for (uint64_t id : lows) {
    const Ptid lp = sched_->LocationOf(id);
    ASSERT_NE(lp, kInvalidPtid);
    lo_total += machine_->threads().thread(lp).ReadGpr(10);
  }
  const uint64_t lo_mean = lo_total / lows.size();
  // The weighted hardware RR gives the high-priority image a clearly larger
  // share than the average low-priority one.
  EXPECT_GT(hi_count, 2 * lo_mean);
}

TEST_F(KschedulerTest, RingSpawnReplacesHostSubmitHop) {
  // Guest-side spawn over the shared ring transport: a ring worker queues
  // the request and rings the scheduler doorbell — no host-side Submit.
  sched_->AddWorkerPool(0, 1, 4);
  sched_->Install();
  timer_->StartTimer();
  RingConfig cfg;
  cfg.entries = 8;
  cfg.num_workers = 1;
  cfg.name = "sched";
  RingServer spawn_ring(*machine_, 0, 6, 0x00440000, cfg, sched_->SpawnHandler());
  spawn_ring.Install();
  uint64_t soft_ids[2] = {~0ull, ~0ull};
  const Ptid spawner = machine_->BindNative(
      0, 8,
      [&](GuestContext& ctx) -> GuestTask {
        SyscallRequest reqs[2] = {
            {.nr = kSchedSpawn, .a0 = entry_, .a1 = 500, .a2 = 2},
            {.nr = kSchedSpawn, .a0 = entry_, .a1 = 600, .a2 = 3},
        };
        co_await ctx.Call(RingCallBatch(ctx, spawn_ring.ring(), reqs, 2, soft_ids));
        co_await ctx.StopSelf();
      },
      /*supervisor=*/false);
  machine_->Start(spawner);
  machine_->RunFor(60000);
  EXPECT_EQ(spawn_ring.served(), 2u);
  EXPECT_EQ(sched_->placements(), 2u);
  for (uint64_t id : soft_ids) {
    const Ptid loc = sched_->LocationOf(id);
    ASSERT_NE(loc, kInvalidPtid);
    EXPECT_GT(machine_->threads().thread(loc).ReadGpr(10), 400u);
  }
}

TEST_F(KschedulerTest, SpawnHandlerRefusesCrossCoreInstall) {
  // SpawnHandler mutates host-side scheduler state, which is shard-safe only
  // when its RingServer runs on the scheduler's core. A ring installed on
  // another core must get a clean refusal (kSchedSpawnRefused) instead of a
  // host-level data race under --host-threads sharding.
  sched_->AddWorkerPool(0, 1, 4);
  sched_->Install();
  timer_->StartTimer();
  RingConfig cfg;
  cfg.entries = 8;
  cfg.num_workers = 1;
  cfg.name = "xcore";
  RingServer spawn_ring(*machine_, /*core=*/1, 0, 0x00450000, cfg, sched_->SpawnHandler());
  spawn_ring.Install();
  uint64_t soft_id = 0;
  const Ptid spawner = machine_->BindNative(
      1, 4,
      [&](GuestContext& ctx) -> GuestTask {
        co_await ctx.Call(RingCall(ctx, spawn_ring.ring(),
                                   {.nr = kSchedSpawn, .a0 = entry_, .a1 = 500, .a2 = 2},
                                   &soft_id));
        co_await ctx.StopSelf();
      },
      /*supervisor=*/false);
  machine_->Start(spawner);
  machine_->RunFor(60000);
  EXPECT_EQ(soft_id, kSchedSpawnRefused);
  EXPECT_EQ(sched_->placements(), 0u);
  EXPECT_EQ(sched_->LocationOf(kSchedSpawnRefused), kInvalidPtid);
}

}  // namespace
}  // namespace casc
