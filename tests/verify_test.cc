// Tests for the differential-fuzzing stack (src/verify): the untimed
// reference model, the harness conventions, the program generator, the
// lattice runner, and the shrinker.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/isa/assembler.h"
#include "src/verify/chaos_plan.h"
#include "src/verify/diff_runner.h"
#include "src/verify/harness.h"
#include "src/verify/prog_gen.h"
#include "src/verify/ref_model.h"
#include "src/verify/shrink.h"

namespace casc {
namespace verify {
namespace {

Program MustAssemble(const std::string& source) {
  AssembleResult res = Assembler::Assemble(source, 0x1000);
  EXPECT_TRUE(res.ok) << res.error;
  return res.program;
}

// ---------------------------------------------------------------------------
// Reference model

TEST(RefModel, RunsStraightLineArithmetic) {
  const Program p = MustAssemble(R"(
    li r1, 7
    li r2, 5
    add r3, r1, r2
    mul r4, r3, r3
    halt
  )");
  RefMachine m{RefConfig{}};
  m.mem().Write(p.base, p.bytes.data(), p.bytes.size());
  m.InitThread(0, p.base, /*supervisor=*/true);
  m.Start(0);
  ASSERT_TRUE(m.Run(1000));
  EXPECT_EQ(m.thread(0).arch.gpr[3], 12u);
  EXPECT_EQ(m.thread(0).arch.gpr[4], 144u);
  EXPECT_EQ(m.thread(0).state, ThreadState::kDisabled);
}

TEST(RefModel, DivideByZeroWithoutEdpHaltsMachine) {
  const Program p = MustAssemble(R"(
    li r2, 0
    div r1, r1, r2
    halt
  )");
  RefMachine m{RefConfig{}};
  m.mem().Write(p.base, p.bytes.data(), p.bytes.size());
  m.InitThread(0, p.base, /*supervisor=*/true);
  m.Start(0);
  ASSERT_TRUE(m.Run(1000));
  EXPECT_TRUE(m.halted());
  EXPECT_NE(m.halt_reason().find("divide-by-zero"), std::string::npos);
}

TEST(RefModel, ExceptionWithEdpWritesDescriptorAndDisables) {
  const Program p = MustAssemble(R"(
    start:
      csrrd r1, 63
      halt
    .align 64
    edp:
      .space 64
  )");
  RefMachine m{RefConfig{}};
  m.mem().Write(p.base, p.bytes.data(), p.bytes.size());
  const Addr edp = p.Symbol("edp");
  m.InitThread(0, p.Symbol("start"), /*supervisor=*/true, edp);
  m.Start(0);
  ASSERT_TRUE(m.Run(1000));
  EXPECT_FALSE(m.halted());
  EXPECT_EQ(m.exception_count(ExceptionType::kIllegalInstruction), 1u);
  EXPECT_EQ(m.thread(0).state, ThreadState::kDisabled);
  // Descriptor: type at +0, ptid at +4, pc at +8.
  EXPECT_EQ(m.mem().ReadUint(edp, 4), static_cast<uint64_t>(ExceptionType::kIllegalInstruction));
  EXPECT_EQ(m.mem().ReadUint(edp + 4, 4), 0u);
  EXPECT_EQ(m.mem().ReadUint(edp + 8, 8), p.Symbol("start"));
}

TEST(RefModel, UserModeManagementIsPermissionChecked) {
  // A user thread with no TDT has no valid translations: start faults with
  // invalid-vtid and, with no edp, halts the machine.
  const Program p = MustAssemble(R"(
    li r1, 1
    start r1
    halt
  )");
  RefMachine m{RefConfig{}};
  m.mem().Write(p.base, p.bytes.data(), p.bytes.size());
  m.InitThread(0, p.base, /*supervisor=*/false);
  m.Start(0);
  ASSERT_TRUE(m.Run(1000));
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.exception_count(ExceptionType::kInvalidVtid), 1u);
}

TEST(RefModel, MonitorMwaitHandshake) {
  // t0 watches its line and blocks; t1 stores to it; t0 resumes and halts.
  const Program p = MustAssemble(R"(
    t0:
      la r5, line
      monitor r5
      mwait
      ld r6, 0(r5)
      halt
    t1:
      la r5, line
      li r6, 99
      sd r6, 0(r5)
      halt
    .align 64
    line:
      .space 64
  )");
  RefMachine m{RefConfig{}};
  m.mem().Write(p.base, p.bytes.data(), p.bytes.size());
  m.InitThread(0, p.Symbol("t0"), true);
  m.InitThread(1, p.Symbol("t1"), true);
  m.Start(0);
  m.Start(1);
  ASSERT_TRUE(m.Run(1000));
  EXPECT_EQ(m.thread(0).arch.gpr[6], 99u);
  EXPECT_EQ(m.thread(0).state, ThreadState::kDisabled);
}

// ---------------------------------------------------------------------------
// Harness

TEST(Harness, ParsesThreadSpecSymbols) {
  const Program p = MustAssemble(R"(
    t0_entry:
    t0_main:
      halt
    t2_entry:
    t2_user:
      halt
    t2_edp:
      .space 64
    t2_tdt:
      .word 0
      .word 0
      .word 0
      .word 0
    t2_tdt_end:
  )");
  const auto specs = ParseThreadSpecs(p, 16);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].ptid, 0u);
  EXPECT_TRUE(specs[0].auto_start);
  EXPECT_TRUE(specs[0].supervisor);
  EXPECT_EQ(specs[0].edp, 0u);
  EXPECT_EQ(specs[1].ptid, 2u);
  EXPECT_FALSE(specs[1].auto_start);
  EXPECT_FALSE(specs[1].supervisor);
  EXPECT_EQ(specs[1].edp, p.Symbol("t2_edp"));
  EXPECT_EQ(specs[1].tdtr, p.Symbol("t2_tdt"));
  EXPECT_EQ(specs[1].tdt_size, 2u);
}

TEST(Harness, SimAndRefAgreeOnSimpleProgram) {
  const Program p = MustAssemble(R"(
    t0_entry:
    t0_main:
      la r28, t0_data
      li r1, 3
      li r2, 4
      mul r3, r1, r2
      sd r3, 0(r28)
      halt
    .align 64
    t0_data:
      .space 64
  )");
  const auto specs = ParseThreadSpecs(p, 16);
  const LatticePoint& pt = DefaultLattice()[0];
  SimRun run(p, specs, pt.machine, pt.predecode);
  Snapshot sim = run.Run(1'000'000);
  RefConfig rc;
  Snapshot ref = RunOnRef(p, specs, rc, 100'000);
  EXPECT_EQ(CompareSnapshots(ref, sim, DescriptorMaskRanges(specs), "ref", "sim"), "");
  EXPECT_EQ(run.CheckInvariants(), "");
}

// ---------------------------------------------------------------------------
// Differential runner on handwritten fault gadgets

TEST(DiffRunner, FaultGadgetsMatchEverywhere) {
  const char* kSources[] = {
      // divide by zero, descriptor written
      R"(
        t0_entry:
        t0_main:
          li r2, 0
          div r1, r1, r2
          halt
        t0_edp:
          .space 64
      )",
      // illegal CSR
      R"(
        t0_entry:
        t0_main:
          csrrd r1, 63
          halt
        t0_edp:
          .space 64
      )",
      // user-mode page fault on the supervisor-only low range
      R"(
        t0_entry:
        t0_main:
        t0_user:
          li r2, 256
          ld r1, 0(r2)
          halt
        t0_edp:
          .space 64
      )",
      // invalid vtid under every model (99 >= threads and >= tdt size)
      R"(
        t0_entry:
        t0_main:
          li r1, 99
          start r1
          halt
        t0_edp:
          .space 64
      )",
  };
  for (const char* src : kSources) {
    DiffOptions opts;
    const DiffFailure f = RunDifferentialSource(src, opts);
    EXPECT_FALSE(f.failed) << f.config << "/" << f.category << ": " << f.detail;
  }
}

TEST(DiffRunner, ReportsAssemblyErrors) {
  DiffOptions opts;
  const DiffFailure f = RunDifferentialSource("bogus r1, r2\n", opts);
  EXPECT_TRUE(f.failed);
  EXPECT_EQ(f.category, "assemble");
}

// ---------------------------------------------------------------------------
// Generator

TEST(ProgGen, GeneratedProgramsAssembleAndPassDifferential) {
  for (uint64_t seed = 100; seed < 106; seed++) {
    const std::string source = GenerateProgram(seed);
    AssembleResult res = Assembler::Assemble(source, 0x1000);
    ASSERT_TRUE(res.ok) << "seed " << seed << ": " << res.error;
    DiffOptions opts;
    const DiffFailure f = RunDifferentialSource(source, opts);
    EXPECT_FALSE(f.failed) << "seed " << seed << " [" << f.config << "/" << f.category
                           << "]: " << f.detail;
  }
}

TEST(ProgGen, DeterministicForSameSeed) {
  EXPECT_EQ(GenerateProgram(42), GenerateProgram(42));
  EXPECT_NE(GenerateProgram(42), GenerateProgram(43));
}

// ---------------------------------------------------------------------------
// Chaos-differential fuzzing (DESIGN.md §4k)

std::string ReadCorpusFile(const std::string& name) {
  std::ifstream in(std::filesystem::path(CASC_CORPUS_DIR) / name);
  EXPECT_TRUE(in.good()) << name;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ChaosPlan, MakeIsDeterministicAndMaskNarrowingIsStable) {
  const ChaosPlan a = MakeChaosPlan(5, kChaosMaskAll);
  const ChaosPlan b = MakeChaosPlan(5, kChaosMaskAll);
  ASSERT_EQ(a.specs.size(), 3u);
  for (size_t i = 0; i < a.specs.size(); i++) {
    EXPECT_EQ(a.specs[i].cls, b.specs[i].cls);
    EXPECT_EQ(a.specs[i].every, b.specs[i].every);
    EXPECT_EQ(a.specs[i].max_faults, b.specs[i].max_faults);
  }
  // Narrowing the mask keeps each surviving class's cadence: shrinking the
  // campaign never reshuffles what remains.
  const ChaosPlan narrow = MakeChaosPlan(5, kChaosMaskMigrationCrash);
  ASSERT_EQ(narrow.specs.size(), 1u);
  EXPECT_EQ(narrow.specs[0].cls, FaultClass::kMigrationCrash);
  EXPECT_EQ(narrow.specs[0].every, a.specs[1].every);
  EXPECT_EQ(narrow.specs[0].max_faults, a.specs[1].max_faults);
}

TEST(ChaosPlan, HeaderRoundTripsThroughCasmComments) {
  ChaosPlan plan = MakeChaosPlan(42, kChaosMaskAll, 123'456);
  const std::string header = FormatChaosPlanHeader(plan);
  ChaosPlan parsed;
  ASSERT_TRUE(ParseChaosPlanHeader(header + "t0_entry:\n  halt\n", &parsed));
  EXPECT_EQ(parsed.seed, plan.seed);
  EXPECT_EQ(parsed.watchdog_ticks, plan.watchdog_ticks);
  ASSERT_EQ(parsed.specs.size(), plan.specs.size());
  for (size_t i = 0; i < plan.specs.size(); i++) {
    EXPECT_EQ(parsed.specs[i].cls, plan.specs[i].cls);
    EXPECT_EQ(parsed.specs[i].every, plan.specs[i].every);
    EXPECT_EQ(parsed.specs[i].max_faults, plan.specs[i].max_faults);
  }
  ChaosPlan none;
  EXPECT_FALSE(ParseChaosPlanHeader("# just a comment\nt0_entry:\n  halt\n", &none));
}

// Each cross-core corpus fixture carries its own chaos plan in `# chaos-*`
// header comments. Replayed on the two-core lattice, the campaign must
// actually bite (injections > 0) and every point must satisfy the liveness
// oracle — quiesce or structured halt, never a wedge.
TEST(ChaosDiff, CorpusFixturesSurviveTheirFaultCampaigns) {
  for (const char* name : {"fabric_fault.casm", "migration_crash.casm",
                           "remote_start_race.casm"}) {
    SCOPED_TRACE(name);
    const std::string source = ReadCorpusFile(name);
    DiffOptions opts;
    opts.num_cores = 2;
    ASSERT_TRUE(ParseChaosPlanHeader(source, &opts.chaos));
    const DiffFailure f = RunDifferentialSource(source, opts);
    EXPECT_FALSE(f.failed) << "[" << f.config << "/" << f.category << "]: " << f.detail;
    EXPECT_GT(f.chaos_injected, 0u);
  }
}

// The deliberately wedged fixture (no restart budget, unbounded fault
// schedule) must be caught by the bounded-progress watchdog — and the joint
// shrinker must minimize the program while keeping the one-spec schedule
// that still wedges it.
TEST(ChaosDiff, WedgedFixtureIsCaughtByWatchdogAndShrinksJointly) {
  const std::string source = ReadCorpusFile("wedge_restart_storm.casm");
  DiffOptions opts;
  opts.points = {0};  // one lattice point keeps the storm affordable
  ASSERT_TRUE(ParseChaosPlanHeader(source, &opts.chaos));
  opts.chaos.watchdog_ticks = 100'000;
  const DiffFailure f = RunDifferentialSource(source, opts);
  ASSERT_TRUE(f.failed);
  EXPECT_EQ(f.category, "wedge");

  const PlanShrinkResult r = ShrinkWithPlan(
      source, opts.chaos, [&](const std::string& s, const ChaosPlan& plan) {
        DiffOptions o = opts;
        o.chaos = plan;
        const DiffFailure cf = RunDifferentialSource(s, o);
        return cf.failed && cf.config == f.config && cf.category == f.category;
      });
  const DiffFailure sf = [&] {
    DiffOptions o = opts;
    o.chaos = r.plan;
    return RunDifferentialSource(r.source, o);
  }();
  EXPECT_TRUE(sf.failed);
  EXPECT_EQ(sf.category, "wedge");
  EXPECT_LT(CountInstructions(r.source), CountInstructions(source));
  ASSERT_EQ(r.plan.specs.size(), 1u);
  EXPECT_EQ(r.plan.specs[0].cls, FaultClass::kMigrationCrash);
}

// ---------------------------------------------------------------------------
// Shrinker

TEST(Shrink, DeletesIrrelevantInstructionsAndSimplifiesOperands) {
  const std::string source =
      "start:\n"
      "  li r1, 5\n"
      "  addi r2, r0, 9\n"
      "  li r3, 77\n"
      "  mul r4, r3, r3\n"
      "  halt\n";
  // Failure: "the program still contains a mul". Everything else should go.
  auto still_fails = [](const std::string& s) {
    if (!Assembler::Assemble(s, 0x1000).ok) {
      return false;
    }
    return s.find("mul") != std::string::npos;
  };
  const std::string shrunk = Shrink(source, still_fails);
  EXPECT_NE(shrunk.find("mul"), std::string::npos);
  EXPECT_EQ(shrunk.find("li r1"), std::string::npos);
  EXPECT_EQ(shrunk.find("addi"), std::string::npos);
  // Operand simplification turned `li r3, 77` (kept: mul reads r3? no — the
  // li itself is deletable) into nothing, and mul's operands stay register
  // tokens. Labels and halt survive by construction.
  EXPECT_NE(shrunk.find("start:"), std::string::npos);
  EXPECT_NE(shrunk.find("halt"), std::string::npos);
  EXPECT_EQ(CountInstructions(shrunk), 2u);  // mul + halt
}

TEST(Shrink, SimplifiesIntegerLiteralsTowardZero) {
  const std::string source = "  li r1, 500\n  sd r1, 48(r28)\n  halt\n";
  // Failure: an sd to some r28 offset exists (any literal values do).
  auto still_fails = [](const std::string& s) {
    if (!Assembler::Assemble(s, 0x1000).ok) {
      return false;
    }
    return s.find("sd r1") != std::string::npos;
  };
  const std::string shrunk = Shrink(source, still_fails);
  EXPECT_NE(shrunk.find("sd r1, 0(r28)"), std::string::npos) << shrunk;
  EXPECT_EQ(shrunk.find("500"), std::string::npos);
  // Register names must never be rewritten.
  EXPECT_NE(shrunk.find("r28"), std::string::npos);
}

TEST(Shrink, CountInstructionsSkipsLabelsDirectivesComments) {
  EXPECT_EQ(CountInstructions("lab:\n.align 64\n# c\n  add r1, r2, r3\n  halt\n"), 2u);
  EXPECT_EQ(CountInstructions("a:\nb:\n  .word 5\n"), 0u);
}

// ---------------------------------------------------------------------------
// Superinstruction fusion (§4j): whole-corpus trace/stats equivalence

// Every saved corpus program must run tick- and stats-identically with the
// fusion pass on and off (both on the default timing point). This is the
// strong form of the timing-neutrality contract: not just matching
// architectural signatures (the lattice covers that) but byte-identical
// stats JSON and equal final clocks.
TEST(Fusion, CorpusRunsIdenticallyWithFusionOnAndOff) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(CASC_CORPUS_DIR)) {
    if (entry.path().extension() == ".casm") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    std::stringstream src;
    src << in.rdbuf();
    const Program p = MustAssemble(src.str());
    const auto specs = ParseThreadSpecs(p, 16);
    auto run = [&](bool fusion, Snapshot* snap, std::string* stats, Tick* end) {
      MachineConfig cfg = DefaultLattice()[0].machine;
      cfg.fusion = fusion;
      SimRun r(p, specs, cfg, /*predecode=*/true);
      *snap = r.Run(2'000'000);
      std::ostringstream os;
      r.machine().sim().stats().DumpJson(os);
      *stats = os.str();
      *end = r.machine().sim().now();
    };
    Snapshot with, without;
    std::string stats_with, stats_without;
    Tick end_with = 0, end_without = 0;
    run(true, &with, &stats_with, &end_with);
    run(false, &without, &stats_without, &end_without);
    EXPECT_TRUE(with.quiesced);
    EXPECT_EQ(CompareSnapshots(with, without, {}, "fused", "unfused"), "");
    EXPECT_EQ(end_with, end_without);
    EXPECT_EQ(stats_with, stats_without);
  }
}

}  // namespace
}  // namespace verify
}  // namespace casc
