// Unit tests for the memory system: functional memory, timing caches,
// MMIO dispatch, DMA, and the generalized monitor filter.
#include <gtest/gtest.h>

#include <limits>

#include "src/mem/cache.h"
#include "src/mem/memory_system.h"
#include "src/mem/monitor_filter.h"
#include "src/mem/phys_mem.h"
#include "src/sim/simulation.h"

namespace casc {
namespace {

TEST(PhysicalMemoryTest, ReadsZeroBeforeWrite) {
  PhysicalMemory mem;
  EXPECT_EQ(mem.Read64(0x1000), 0u);
  EXPECT_EQ(mem.PageCount(), 0u);
}

TEST(PhysicalMemoryTest, RoundTripsScalars) {
  PhysicalMemory mem;
  mem.Write64(0x2000, 0x1122334455667788ull);
  EXPECT_EQ(mem.Read64(0x2000), 0x1122334455667788ull);
  EXPECT_EQ(mem.Read32(0x2000), 0x55667788u);
  EXPECT_EQ(mem.Read8(0x2007), 0x11u);
  mem.Write16(0x2100, 0xbeef);
  EXPECT_EQ(mem.Read16(0x2100), 0xbeefu);
}

TEST(PhysicalMemoryTest, CrossPageAccess) {
  PhysicalMemory mem;
  const Addr addr = PhysicalMemory::kPageSize - 4;
  mem.Write64(addr, 0xa1b2c3d4e5f60718ull);
  EXPECT_EQ(mem.Read64(addr), 0xa1b2c3d4e5f60718ull);
  EXPECT_EQ(mem.PageCount(), 2u);
}

TEST(CacheTest, HitAfterMiss) {
  Cache c(CacheConfig{"t", 4096, 4, 4});
  EXPECT_FALSE(c.Access(0x100, false));
  EXPECT_TRUE(c.Access(0x100, false));
  EXPECT_TRUE(c.Access(0x13f, false));  // same 64B line
  EXPECT_FALSE(c.Access(0x140, false));
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheTest, LruEviction) {
  // 4 lines, 2 ways -> 2 sets. Lines mapping to set 0: 0x0, 0x80, 0x100...
  Cache c(CacheConfig{"t", 256, 2, 4});
  EXPECT_FALSE(c.Access(0x000, false));
  EXPECT_FALSE(c.Access(0x080, false));
  EXPECT_TRUE(c.Access(0x000, false));   // 0x080 is now LRU
  EXPECT_FALSE(c.Access(0x100, false));  // evicts 0x080
  EXPECT_TRUE(c.Access(0x000, false));
  EXPECT_FALSE(c.Access(0x080, false));
}

TEST(CacheTest, DirtyWritebackOnEviction) {
  Cache c(CacheConfig{"t", 256, 2, 4});
  c.Access(0x000, true);  // dirty
  c.Access(0x080, false);
  bool dirty = false;
  c.Access(0x100, false, &dirty);  // evicts 0x000 (LRU, dirty)
  EXPECT_TRUE(dirty);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheTest, InvalidateReportsDirty) {
  Cache c(CacheConfig{"t", 4096, 4, 4});
  c.Access(0x200, true);
  EXPECT_TRUE(c.Invalidate(0x200));
  EXPECT_FALSE(c.Probe(0x200));
  EXPECT_FALSE(c.Invalidate(0x200));
}

TEST(CachePinTest, PinnedLinesSurviveThrash) {
  // 2-way, 2-set cache; pin one line and thrash its set with conflicting
  // unpinned fills: the pinned line must stay resident (§4 partitioning).
  Cache c(CacheConfig{"t", 256, 2, 4});
  c.PinRange(0x000, 64);
  c.Access(0x000, false);  // pinned fill
  for (int i = 1; i <= 20; i++) {
    c.Access(static_cast<Addr>(i) * 0x80, false);  // same set, unpinned
  }
  EXPECT_TRUE(c.Probe(0x000));
  EXPECT_EQ(c.bypasses(), 0u);  // one way was always left for unpinned data
}

TEST(CachePinTest, FullyPinnedSetBypassesUnpinnedFills) {
  Cache c(CacheConfig{"t", 256, 2, 4});
  c.PinRange(0x000, 0x200);
  c.Access(0x000, false);  // pinned, set 0 way 0
  c.Access(0x100, false);  // pinned, set 0 way 1
  c.Access(0x280, false);  // unpinned... maps to set 2? 0x280/64=10, 10%2=0 -> set 0
  EXPECT_GT(c.bypasses(), 0u);
  EXPECT_FALSE(c.Probe(0x280));
  EXPECT_TRUE(c.Probe(0x000));
  EXPECT_TRUE(c.Probe(0x100));
}

TEST(CachePinTest, PinnedFillMayReplacePinnedLine) {
  Cache c(CacheConfig{"t", 256, 2, 4});
  c.PinRange(0x000, 0x1000);
  c.Access(0x000, false);
  c.Access(0x100, false);
  c.Access(0x200, false);  // pinned fill evicts the LRU pinned line
  EXPECT_TRUE(c.Probe(0x200));
  EXPECT_FALSE(c.Probe(0x000));
}

TEST(CachePinTest, ClearPinsRestoresNormalEviction) {
  Cache c(CacheConfig{"t", 256, 2, 4});
  c.PinRange(0x000, 64);
  c.Access(0x000, false);
  c.ClearPins();
  // New fills are unpinned, but the already-pinned line keeps its flag until
  // invalidated — documented behavior.
  c.InvalidateAll();
  c.Access(0x000, false);
  c.Access(0x080, false);
  c.Access(0x100, false);
  EXPECT_FALSE(c.Probe(0x000));  // normal LRU eviction again
}

class MemorySystemTest : public ::testing::Test {
 protected:
  MemorySystemTest() : sim_(3.0), mem_(sim_, MemConfig{}, 2) {}
  Simulation sim_;
  MemorySystem mem_;
};

TEST_F(MemorySystemTest, LatencyTiersStack) {
  const MemConfig& cfg = mem_.config();
  // Cold: L1 + L2 + L3 + DRAM.
  const Tick cold = mem_.AccessLatency(0, 0x10000, false, false);
  EXPECT_EQ(cold, cfg.l1d.hit_latency + cfg.l2.hit_latency + cfg.l3.hit_latency +
                      cfg.dram_latency);
  // Warm: L1 hit.
  EXPECT_EQ(mem_.AccessLatency(0, 0x10000, false, false), cfg.l1d.hit_latency);
  // Other core: private miss, shared L3 hit.
  EXPECT_EQ(mem_.AccessLatency(1, 0x10000, false, false),
            cfg.l1d.hit_latency + cfg.l2.hit_latency + cfg.l3.hit_latency);
}

TEST_F(MemorySystemTest, ReadWriteFunctional) {
  uint64_t v = 0;
  mem_.Write(0, 0x3000, 8, 0xdeadbeefcafef00dull);
  mem_.Read(0, 0x3000, 8, &v);
  EXPECT_EQ(v, 0xdeadbeefcafef00dull);
}

TEST_F(MemorySystemTest, CrossCoreWriteInvalidates) {
  uint64_t v = 0;
  mem_.Read(1, 0x4000, 8, &v);                      // core 1 caches the line
  EXPECT_EQ(mem_.AccessLatency(1, 0x4000, false, false), mem_.config().l1d.hit_latency);
  mem_.Write(0, 0x4000, 8, 7);                      // core 0 writes -> invalidate core 1
  const Tick lat = mem_.AccessLatency(1, 0x4000, false, false);
  EXPECT_GT(lat, mem_.config().l1d.hit_latency);
  mem_.Read(1, 0x4000, 8, &v);
  EXPECT_EQ(v, 7u);
}

TEST_F(MemorySystemTest, DmaWritesMemoryAndInvalidates) {
  uint64_t v = 0;
  mem_.Read(0, 0x5000, 8, &v);  // warm core 0
  const uint8_t payload[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  mem_.DmaWrite(0x5000, payload, sizeof(payload));
  mem_.Read(0, 0x5000, 1, &v);
  EXPECT_EQ(v, 1u);
  mem_.Read(0, 0x500f, 1, &v);
  EXPECT_EQ(v, 16u);
}

TEST_F(MemorySystemTest, DmaAllocatesIntoL3) {
  const uint8_t b = 9;
  mem_.DmaWrite(0x9000, &b, 1);
  // DDIO: the line should now be an L3 hit (L1+L2 miss).
  const MemConfig& cfg = mem_.config();
  EXPECT_EQ(mem_.AccessLatency(0, 0x9000, false, false),
            cfg.l1d.hit_latency + cfg.l2.hit_latency + cfg.l3.hit_latency);
}

class TestMmioDevice : public MmioDevice {
 public:
  uint64_t MmioRead(Addr offset, size_t) override { return 0x100 + offset; }
  void MmioWrite(Addr offset, size_t, uint64_t value) override {
    last_offset = offset;
    last_value = value;
  }
  Addr last_offset = 0;
  uint64_t last_value = 0;
};

TEST_F(MemorySystemTest, MmioDispatch) {
  TestMmioDevice dev;
  mem_.RegisterMmio(0xf000000, 0x1000, &dev);
  uint64_t v = 0;
  const Tick rlat = mem_.Read(0, 0xf000010, 8, &v);
  EXPECT_EQ(v, 0x110u);
  EXPECT_EQ(rlat, mem_.config().mmio_latency);
  mem_.Write(0, 0xf000020, 4, 42);
  EXPECT_EQ(dev.last_offset, 0x20u);
  EXPECT_EQ(dev.last_value, 42u);
}

TEST_F(MemorySystemTest, BulkLatencyScalesWithBytes) {
  const MemConfig& cfg = mem_.config();
  // 272 B of register state over a 32 B link: 9 beats.
  EXPECT_EQ(mem_.BulkLatency(MemLevel::kL2, 272), cfg.l2.hit_latency + 9);
  EXPECT_EQ(mem_.BulkLatency(MemLevel::kL3, 784), cfg.l3.hit_latency + 25);
  EXPECT_GT(mem_.BulkLatency(MemLevel::kDram, 272), mem_.BulkLatency(MemLevel::kL3, 272));
}

class MonitorFilterTest : public ::testing::Test {
 protected:
  MonitorFilterTest() : filter_(MonitorFilterConfig{}, stats_) {
    filter_.SetWakeHandler([this](Ptid p, Addr line) { wakes_.push_back({p, line}); });
  }
  StatsRegistry stats_;
  MonitorFilter filter_;
  std::vector<std::pair<Ptid, Addr>> wakes_;
};

TEST_F(MonitorFilterTest, WakesWaitingThreadOnWrite) {
  ASSERT_TRUE(filter_.AddWatch(3, 0x1000));
  filter_.SetWaiting(3, true);
  filter_.OnWrite(0x1008, 8);  // same line
  ASSERT_EQ(wakes_.size(), 1u);
  EXPECT_EQ(wakes_[0].first, 3u);
  EXPECT_EQ(wakes_[0].second, 0x1000u);
}

TEST_F(MonitorFilterTest, NoWakeWhenNotWaitingButPendingRecorded) {
  ASSERT_TRUE(filter_.AddWatch(3, 0x1000));
  filter_.OnWrite(0x1000, 8);
  EXPECT_TRUE(wakes_.empty());
  EXPECT_TRUE(filter_.ConsumePending(3));   // mwait would return immediately
  EXPECT_FALSE(filter_.ConsumePending(3));  // consumed
}

TEST_F(MonitorFilterTest, UnrelatedLineDoesNotWake) {
  ASSERT_TRUE(filter_.AddWatch(3, 0x1000));
  filter_.SetWaiting(3, true);
  filter_.OnWrite(0x2000, 8);
  EXPECT_TRUE(wakes_.empty());
}

TEST_F(MonitorFilterTest, MultipleWatchesPerThread) {
  ASSERT_TRUE(filter_.AddWatch(7, 0x1000));
  ASSERT_TRUE(filter_.AddWatch(7, 0x2000));
  filter_.SetWaiting(7, true);
  filter_.OnWrite(0x2000, 1);
  ASSERT_EQ(wakes_.size(), 1u);
  EXPECT_EQ(wakes_[0].second, 0x2000u);
}

TEST_F(MonitorFilterTest, WakeFiresOnceForBackToBackWrites) {
  ASSERT_TRUE(filter_.AddWatch(3, 0x1000));
  filter_.SetWaiting(3, true);
  filter_.OnWrite(0x1000, 8);
  filter_.OnWrite(0x1000, 8);
  EXPECT_EQ(wakes_.size(), 1u);
}

TEST_F(MonitorFilterTest, PerThreadCapacityEnforced) {
  MonitorFilterConfig cfg;
  cfg.max_watches_per_thread = 2;
  MonitorFilter f(cfg, stats_);
  EXPECT_TRUE(f.AddWatch(1, 0x0));
  EXPECT_TRUE(f.AddWatch(1, 0x40));
  EXPECT_FALSE(f.AddWatch(1, 0x80));
  EXPECT_EQ(stats_.GetCounter("monitor.overflows"), 1u);
}

TEST_F(MonitorFilterTest, GlobalCapacityEnforced) {
  MonitorFilterConfig cfg;
  cfg.max_watch_lines = 2;
  MonitorFilter f(cfg, stats_);
  EXPECT_TRUE(f.AddWatch(1, 0x0));
  EXPECT_TRUE(f.AddWatch(2, 0x40));
  EXPECT_FALSE(f.AddWatch(3, 0x80));
  // Re-watching an already-tracked line still succeeds.
  EXPECT_TRUE(f.AddWatch(3, 0x40));
}

TEST_F(MonitorFilterTest, ClearWatchesStopsWakes) {
  ASSERT_TRUE(filter_.AddWatch(3, 0x1000));
  filter_.ClearWatches(3);
  filter_.SetWaiting(3, true);
  filter_.OnWrite(0x1000, 8);
  EXPECT_TRUE(wakes_.empty());
  EXPECT_EQ(filter_.WatchedLineCount(), 0u);
}

TEST_F(MonitorFilterTest, MultiLineWriteTriggersAllSpannedLines) {
  ASSERT_TRUE(filter_.AddWatch(1, 0x1000));
  ASSERT_TRUE(filter_.AddWatch(2, 0x1040));
  filter_.SetWaiting(1, true);
  filter_.SetWaiting(2, true);
  filter_.OnWrite(0x1030, 32);  // spans both lines
  EXPECT_EQ(wakes_.size(), 2u);
}

TEST_F(MonitorFilterTest, WriteEndingAtAddressSpaceTopTerminatesAndWakes) {
  // Regression: a write whose last byte is the final address used to wrap the
  // `line <= last` iterator (line + kLineSize overflows to 0) and spin
  // forever. The last line must trigger exactly once and the loop must exit.
  const Addr kLastLine = LineBase(std::numeric_limits<Addr>::max());
  ASSERT_TRUE(filter_.AddWatch(3, kLastLine));
  filter_.SetWaiting(3, true);
  filter_.OnWrite(std::numeric_limits<Addr>::max() - 7, 8);
  ASSERT_EQ(wakes_.size(), 1u);
  EXPECT_EQ(wakes_[0].second, kLastLine);
}

TEST_F(MonitorFilterTest, OversizedWriteClampsToAddressSpaceTop) {
  // Regression: addr + len - 1 overflowing Addr made the spanned-line range
  // empty, so watched lines near the top were silently skipped. The span must
  // clamp to the top of the address space and trigger every covered line.
  const Addr kLastLine = LineBase(std::numeric_limits<Addr>::max());
  ASSERT_TRUE(filter_.AddWatch(1, kLastLine - kLineSize));
  ASSERT_TRUE(filter_.AddWatch(2, kLastLine));
  filter_.SetWaiting(1, true);
  filter_.SetWaiting(2, true);
  filter_.OnWrite(kLastLine - kLineSize, 0x100);  // end wraps past the top
  EXPECT_EQ(wakes_.size(), 2u);
}

TEST_F(MonitorFilterTest, ZeroLengthWriteTouchesOnlyItsBaseLine) {
  ASSERT_TRUE(filter_.AddWatch(3, 0x1000));
  ASSERT_TRUE(filter_.AddWatch(4, 0x1040));
  filter_.SetWaiting(3, true);
  filter_.SetWaiting(4, true);
  filter_.OnWrite(0x1000, 0);
  ASSERT_EQ(wakes_.size(), 1u);
  EXPECT_EQ(wakes_[0].first, 3u);
}

TEST_F(MonitorFilterTest, RejectedWatchLeavesNoThreadState) {
  // Regression: AddWatch default-created the per-thread entry before checking
  // capacity, so every rejected ptid left a stale ThreadState behind that
  // ClearWatches never reclaimed.
  MonitorFilterConfig cfg;
  cfg.max_watch_lines = 1;
  MonitorFilter f(cfg, stats_);
  ASSERT_TRUE(f.AddWatch(1, 0x0));
  EXPECT_FALSE(f.AddWatch(2, 0x40));  // global capacity hit
  EXPECT_EQ(f.TrackedThreadCount(), 1u);
  // The rejected ptid also has no phantom pending event.
  EXPECT_FALSE(f.ConsumePending(2));
}

TEST_F(MonitorFilterTest, ZeroPerThreadCapacityTracksNothing) {
  MonitorFilterConfig cfg;
  cfg.max_watches_per_thread = 0;
  MonitorFilter f(cfg, stats_);
  EXPECT_FALSE(f.AddWatch(1, 0x0));
  EXPECT_EQ(f.TrackedThreadCount(), 0u);
  EXPECT_EQ(stats_.GetCounter("monitor.overflows"), 1u);
}

TEST_F(MonitorFilterTest, UnwatchedWriteNeverTriggers) {
  // The summary filter short-circuits writes to unwatched lines; a watched
  // line must still count a trigger.
  ASSERT_TRUE(filter_.AddWatch(1, 0x1000));
  filter_.OnWrite(0x40000, 8);
  EXPECT_EQ(stats_.GetCounter("monitor.triggers"), 0u);
  filter_.OnWrite(0x1000, 8);
  EXPECT_EQ(stats_.GetCounter("monitor.triggers"), 1u);
}

TEST_F(MonitorFilterTest, SummaryCountsWatchersClearOfOneKeepsOtherLive) {
  // Two ptids watch the same line. Clearing one must not zero the summary
  // slot (it counts distinct watched lines, not watchers): the write still
  // wakes the remaining watcher.
  ASSERT_TRUE(filter_.AddWatch(1, 0x1000));
  ASSERT_TRUE(filter_.AddWatch(2, 0x1000));
  filter_.ClearWatches(1);
  filter_.SetWaiting(2, true);
  filter_.OnWrite(0x1000, 8);
  ASSERT_EQ(wakes_.size(), 1u);
  EXPECT_EQ(wakes_[0].first, 2u);
  // Clearing the last watcher releases the line entirely.
  filter_.ClearWatches(2);
  ASSERT_TRUE(filter_.AddWatch(3, 0x9000));  // keeps the watcher map non-empty
  filter_.OnWrite(0x1000, 8);
  EXPECT_EQ(stats_.GetCounter("monitor.triggers"), 1u);
}

TEST_F(MonitorFilterTest, RewatchAfterClearStillWakes) {
  ASSERT_TRUE(filter_.AddWatch(1, 0x1000));
  filter_.ClearWatches(1);
  ASSERT_TRUE(filter_.AddWatch(1, 0x1000));
  filter_.SetWaiting(1, true);
  filter_.OnWrite(0x1000, 8);
  ASSERT_EQ(wakes_.size(), 1u);
  EXPECT_EQ(wakes_[0].first, 1u);
}

// Regression (found by casc_fuzz via tests/corpus/monitor_wrap.casm): a
// write whose last byte is the top of the address space made `addr + len`
// wrap to 0, so the `line <= last` invalidation loops in InvalidateForWrite
// and DmaWrite never terminated. The clamp must keep the walk on the final
// line; monitors there must still fire.
TEST_F(MonitorFilterTest, MemorySystemWriteEndingAtTopTerminatesAndWakes) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 2);
  std::vector<Ptid> woken;
  mem.monitors().SetWakeHandler([&](Ptid p, Addr) { woken.push_back(p); });
  const Addr top_line = std::numeric_limits<Addr>::max() - (kLineSize - 1);
  ASSERT_TRUE(mem.monitors().AddWatch(3, top_line));
  mem.monitors().SetWaiting(3, true);
  // CPU-side store: 8 bytes ending exactly at Addr max.
  mem.Write(0, std::numeric_limits<Addr>::max() - 7, 8, 0xdeadbeef);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 3u);
  uint64_t out = 0;
  mem.Read(0, std::numeric_limits<Addr>::max() - 7, 8, &out);
  EXPECT_EQ(out, 0xdeadbeefu);
}

TEST_F(MonitorFilterTest, DmaWriteEndingAtTopTerminatesAndWakes) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 2);
  std::vector<Ptid> woken;
  mem.monitors().SetWakeHandler([&](Ptid p, Addr) { woken.push_back(p); });
  const Addr top_line = std::numeric_limits<Addr>::max() - (kLineSize - 1);
  ASSERT_TRUE(mem.monitors().AddWatch(5, top_line));
  mem.monitors().SetWaiting(5, true);
  const uint16_t tail = 0xbeef;
  mem.DmaWrite(std::numeric_limits<Addr>::max() - 1, &tail, 2);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 5u);
}

TEST_F(MonitorFilterTest, DmaWriteThroughMemorySystemWakes) {
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  std::vector<Ptid> woken;
  mem.monitors().SetWakeHandler([&](Ptid p, Addr) { woken.push_back(p); });
  ASSERT_TRUE(mem.monitors().AddWatch(9, 0x8000));
  mem.monitors().SetWaiting(9, true);
  const uint64_t pkt = 0x1234;
  mem.DmaWrite(0x8000, &pkt, 8);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 9u);
}

}  // namespace
}  // namespace casc
