// Tests for the hardware threading model: ptid state machine, TDT
// translation and permissions (Table 1), vtid cache + invtid, tiered context
// store, weighted scheduling queue, exception descriptors, and monitor/mwait
// integration.
#include <gtest/gtest.h>

#include "src/hwt/context_store.h"
#include "src/hwt/exception.h"
#include "src/hwt/sched_queue.h"
#include "src/hwt/tdt.h"
#include "src/hwt/thread_system.h"
#include "src/mem/memory_system.h"
#include "src/sim/simulation.h"

namespace casc {
namespace {

constexpr Addr kTdtBase = 0x20000;

class HwtTest : public ::testing::Test {
 protected:
  HwtTest() : sim_(3.0), mem_(sim_, MemConfig{}, 2), ts_(sim_, mem_, MakeConfig(), 2) {}

  static HwtConfig MakeConfig() {
    HwtConfig cfg;
    cfg.threads_per_core = 16;
    cfg.rf_slots = 4;
    cfg.l2_slots = 4;
    cfg.l3_slots = 4;
    return cfg;
  }

  // Installs a TDT for `issuer` with one entry: vtid 0 -> (target, perms).
  void InstallTdt(Ptid issuer, Ptid target, uint8_t perms, uint64_t size = 1) {
    TdtEntry{target, perms}.WriteTo(mem_, kTdtBase, 0);
    ts_.thread(issuer).arch().tdtr = kTdtBase;
    ts_.thread(issuer).arch().tdt_size = size;
  }

  Simulation sim_;
  MemorySystem mem_;
  ThreadSystem ts_;
};

TEST_F(HwtTest, ThreadsStartDisabled) {
  for (Ptid p = 0; p < ts_.num_threads(); p++) {
    EXPECT_EQ(ts_.thread(p).state(), ThreadState::kDisabled);
  }
  EXPECT_EQ(ts_.num_threads(), 32u);
  EXPECT_EQ(ts_.CoreOf(17), 1u);
  EXPECT_EQ(ts_.PtidOf(1, 1), 17u);
}

TEST_F(HwtTest, SupervisorIdentityStartStop) {
  ts_.InitThread(0, 0x1000, /*supervisor=*/true);
  ts_.thread(0).set_state(ThreadState::kRunnable);
  OpResult r = ts_.Start(0, 5);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(ts_.thread(5).state(), ThreadState::kRunnable);
  EXPECT_GT(r.latency, 0u);

  r = ts_.Stop(0, 5);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(ts_.thread(5).state(), ThreadState::kDisabled);
}

TEST_F(HwtTest, UserWithoutTdtCannotStart) {
  ts_.InitThread(1, 0x1000, /*supervisor=*/false, /*edp=*/0x30000);
  ts_.thread(1).set_state(ThreadState::kRunnable);
  const OpResult r = ts_.Start(1, 5);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(ts_.thread(1).state(), ThreadState::kDisabled);  // faulted
  EXPECT_EQ(ts_.thread(5).state(), ThreadState::kDisabled);
  sim_.queue().RunAll();
  const ExceptionDescriptor d = ExceptionDescriptor::ReadFrom(mem_, 0x30000);
  EXPECT_EQ(d.type, static_cast<uint32_t>(ExceptionType::kInvalidVtid));
  EXPECT_EQ(d.ptid, 1u);
}

TEST_F(HwtTest, TdtGrantsStartToUserThread) {
  ts_.InitThread(1, 0x1000, /*supervisor=*/false);
  ts_.thread(1).set_state(ThreadState::kRunnable);
  InstallTdt(1, /*target=*/7, kPermStart);
  const OpResult r = ts_.Start(1, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(ts_.thread(7).state(), ThreadState::kRunnable);
}

TEST_F(HwtTest, TdtDeniesStopWithoutPermission) {
  ts_.InitThread(1, 0x1000, /*supervisor=*/false, /*edp=*/0x30000);
  ts_.thread(1).set_state(ThreadState::kRunnable);
  InstallTdt(1, /*target=*/7, kPermStart);  // start only
  ts_.thread(7).set_state(ThreadState::kRunnable);
  const OpResult r = ts_.Stop(1, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(ts_.thread(7).state(), ThreadState::kRunnable);  // unaffected
  sim_.queue().RunAll();
  const ExceptionDescriptor d = ExceptionDescriptor::ReadFrom(mem_, 0x30000);
  EXPECT_EQ(d.type, static_cast<uint32_t>(ExceptionType::kPermissionDenied));
}

TEST_F(HwtTest, NonHierarchicalPrivilege) {
  // §3.2: B may stop A, C may stop B, but C has no permission over A —
  // impossible with protection rings.
  const Ptid a = 4;
  const Ptid b = 5;
  const Ptid c = 6;
  for (Ptid p : {a, b, c}) {
    ts_.InitThread(p, 0x1000, /*supervisor=*/false, /*edp=*/0x30000 + p * 0x100);
    ts_.thread(p).set_state(ThreadState::kRunnable);
  }
  // B's TDT: vtid0 -> A (stop). C's TDT: vtid0 -> B (stop). Separate tables.
  TdtEntry{a, kPermStop}.WriteTo(mem_, 0x40000, 0);
  ts_.thread(b).arch().tdtr = 0x40000;
  ts_.thread(b).arch().tdt_size = 1;
  TdtEntry{b, kPermStop}.WriteTo(mem_, 0x41000, 0);
  ts_.thread(c).arch().tdtr = 0x41000;
  ts_.thread(c).arch().tdt_size = 1;

  EXPECT_TRUE(ts_.Stop(b, 0).ok);  // B stops A
  EXPECT_EQ(ts_.thread(a).state(), ThreadState::kDisabled);
  EXPECT_TRUE(ts_.Stop(c, 0).ok);  // C stops B
  EXPECT_EQ(ts_.thread(b).state(), ThreadState::kDisabled);
  // C's only vtid maps to B; it has no way to name A at all.
  EXPECT_FALSE(ts_.Start(c, 1).ok);  // out of table -> invalid vtid, C faults
}

TEST_F(HwtTest, RpullRpushOnDisabledTarget) {
  ts_.InitThread(0, 0x1000, /*supervisor=*/true);
  ts_.thread(0).set_state(ThreadState::kRunnable);
  ts_.thread(3).arch().pc = 0x2222;
  ts_.thread(3).WriteGpr(10, 77);

  OpResult r = ts_.Rpull(0, 3, 10);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 77u);
  r = ts_.Rpull(0, 3, static_cast<uint32_t>(RemoteReg::kPc));
  EXPECT_EQ(r.value, 0x2222u);

  EXPECT_TRUE(ts_.Rpush(0, 3, static_cast<uint32_t>(RemoteReg::kPc), 0x3333).ok);
  EXPECT_EQ(ts_.thread(3).arch().pc, 0x3333u);
  EXPECT_TRUE(ts_.Rpush(0, 3, 11, 88).ok);
  EXPECT_EQ(ts_.thread(3).ReadGpr(11), 88u);
}

TEST_F(HwtTest, RpullFaultsOnRunnableTarget) {
  ts_.InitThread(0, 0x1000, /*supervisor=*/true, /*edp=*/0x30000);
  ts_.thread(0).set_state(ThreadState::kRunnable);
  ts_.thread(3).set_state(ThreadState::kRunnable);
  const OpResult r = ts_.Rpull(0, 3, 10);
  EXPECT_FALSE(r.ok);
  sim_.queue().RunAll();
  const ExceptionDescriptor d = ExceptionDescriptor::ReadFrom(mem_, 0x30000);
  EXPECT_EQ(d.type, static_cast<uint32_t>(ExceptionType::kTargetNotDisabled));
}

TEST_F(HwtTest, UserCannotRpushModeEvenWithModifyMost) {
  ts_.InitThread(1, 0x1000, /*supervisor=*/false, /*edp=*/0x30000);
  ts_.thread(1).set_state(ThreadState::kRunnable);
  InstallTdt(1, /*target=*/7, kPermAll);
  const OpResult r = ts_.Rpush(1, 0, static_cast<uint32_t>(RemoteReg::kMode), 1);
  EXPECT_FALSE(r.ok);
  sim_.queue().RunAll();
  const ExceptionDescriptor d = ExceptionDescriptor::ReadFrom(mem_, 0x30000);
  EXPECT_EQ(d.type, static_cast<uint32_t>(ExceptionType::kPrivilegedInstruction));
}

TEST_F(HwtTest, UserNeedsModifyMostForPcWrite) {
  ts_.InitThread(1, 0x1000, /*supervisor=*/false, /*edp=*/0x30000);
  ts_.thread(1).set_state(ThreadState::kRunnable);
  InstallTdt(1, /*target=*/7, kPermStart | kPermStop | kPermModifySome);
  // GPR write allowed.
  EXPECT_TRUE(ts_.Rpush(1, 0, 12, 5).ok);
  // PC write requires modify-most.
  EXPECT_FALSE(ts_.Rpush(1, 0, static_cast<uint32_t>(RemoteReg::kPc), 0x9999).ok);
}

TEST_F(HwtTest, VtidCacheHitsAfterWalkAndInvtidInvalidates) {
  ts_.InitThread(0, 0x1000, /*supervisor=*/true);
  ts_.thread(0).set_state(ThreadState::kRunnable);
  InstallTdt(0, /*target=*/7, kPermAll, /*size=*/4);

  Tick lat1 = 0;
  const Translation t1 = ts_.Translate(0, 0, &lat1);
  ASSERT_TRUE(t1.valid);
  EXPECT_FALSE(t1.cache_hit);
  EXPECT_GT(lat1, ts_.config().vtid_cache_hit_cycles);  // memory walk

  Tick lat2 = 0;
  const Translation t2 = ts_.Translate(0, 0, &lat2);
  EXPECT_TRUE(t2.cache_hit);
  EXPECT_EQ(lat2, ts_.config().vtid_cache_hit_cycles);

  // Repoint the entry; stale until invtid.
  TdtEntry{9, kPermAll}.WriteTo(mem_, kTdtBase, 0);
  Tick lat3 = 0;
  EXPECT_EQ(ts_.Translate(0, 0, &lat3).ptid, 7u);  // stale hit
  // invtid names the thread whose cache is flushed; install a self-mapping
  // at vtid 1 so the issuer can invalidate its own entry 0.
  TdtEntry{0, kPermAll}.WriteTo(mem_, kTdtBase, 1);
  EXPECT_TRUE(ts_.Invtid(0, 1, 0).ok);
  Tick lat4 = 0;
  const Translation t4 = ts_.Translate(0, 0, &lat4);
  EXPECT_EQ(t4.ptid, 9u);
  EXPECT_FALSE(t4.cache_hit);
}

TEST_F(HwtTest, MonitorMwaitWakeOnDma) {
  ts_.InitThread(2, 0x1000, /*supervisor=*/false);
  ts_.thread(2).set_state(ThreadState::kRunnable);
  EXPECT_TRUE(ts_.Monitor(2, 0x8000).ok);
  const auto mw = ts_.Mwait(2);
  EXPECT_TRUE(mw.blocked);
  EXPECT_EQ(ts_.thread(2).state(), ThreadState::kWaiting);

  const uint64_t pkt = 1;
  mem_.DmaWrite(0x8000, &pkt, 8);
  EXPECT_EQ(ts_.thread(2).state(), ThreadState::kRunnable);
  EXPECT_GE(ts_.thread(2).ready_at(), sim_.now());
}

TEST_F(HwtTest, MwaitReturnsImmediatelyIfWriteRacedAhead) {
  ts_.InitThread(2, 0x1000, /*supervisor=*/false);
  ts_.thread(2).set_state(ThreadState::kRunnable);
  EXPECT_TRUE(ts_.Monitor(2, 0x8000).ok);
  const uint64_t pkt = 1;
  mem_.DmaWrite(0x8000, &pkt, 8);  // write lands between monitor and mwait
  const auto mw = ts_.Mwait(2);
  EXPECT_FALSE(mw.blocked);
  EXPECT_EQ(ts_.thread(2).state(), ThreadState::kRunnable);
}

TEST_F(HwtTest, StartWakesWaitingThread) {
  ts_.InitThread(0, 0x1000, /*supervisor=*/true);
  ts_.thread(0).set_state(ThreadState::kRunnable);
  ts_.InitThread(2, 0x1000, /*supervisor=*/false);
  ts_.thread(2).set_state(ThreadState::kRunnable);
  ASSERT_TRUE(ts_.Monitor(2, 0x8000).ok);
  ASSERT_TRUE(ts_.Mwait(2).blocked);
  EXPECT_TRUE(ts_.Start(0, 2).ok);
  EXPECT_EQ(ts_.thread(2).state(), ThreadState::kRunnable);
}

TEST_F(HwtTest, CrossCoreStartAddsInterconnectDelay) {
  ts_.InitThread(0, 0x1000, /*supervisor=*/true);
  ts_.thread(0).set_state(ThreadState::kRunnable);
  const Ptid remote = ts_.PtidOf(1, 0);
  sim_.queue().RunUntil(100);
  EXPECT_TRUE(ts_.Start(0, remote).ok);
  EXPECT_GE(ts_.thread(remote).ready_at(), 100 + ts_.config().remote_start_cycles);
}

TEST_F(HwtTest, ExceptionWithoutEdpHaltsMachine) {
  ts_.InitThread(3, 0x1000, /*supervisor=*/false, /*edp=*/0);
  ts_.thread(3).set_state(ThreadState::kRunnable);
  ts_.RaiseException(3, ExceptionType::kDivideByZero, 0, 0);
  EXPECT_TRUE(ts_.halted());
  EXPECT_NE(ts_.halt_reason().find("divide-by-zero"), std::string::npos);
  // The structured halt record carries the same story as the string.
  EXPECT_EQ(ts_.halt_info().reason, HaltReason::kUnhandledException);
  EXPECT_EQ(ts_.halt_info().exception, ExceptionType::kDivideByZero);
  EXPECT_EQ(ts_.halt_info().ptid, 3u);
  EXPECT_EQ(ts_.halt_info().chain_depth, 0u);
}

TEST_F(HwtTest, ExceptionChainEndsAtThreadWithoutHandler) {
  // A faults -> B handles; B faults -> C handles; C faults -> halt (§3.2).
  ts_.InitThread(4, 0x1000, false, /*edp=*/0x30000);
  ts_.InitThread(5, 0x1000, false, /*edp=*/0x30100);
  ts_.InitThread(6, 0x1000, false, /*edp=*/0);
  for (Ptid p : {4u, 5u, 6u}) {
    ts_.thread(p).set_state(ThreadState::kRunnable);
  }
  ts_.RaiseException(4, ExceptionType::kDivideByZero, 0, 0);
  sim_.queue().RunAll();
  EXPECT_FALSE(ts_.halted());
  EXPECT_EQ(ExceptionDescriptor::ReadFrom(mem_, 0x30000).ptid, 4u);

  ts_.RaiseException(5, ExceptionType::kPageFault, 0xdead, 0);
  sim_.queue().RunAll();
  EXPECT_FALSE(ts_.halted());
  EXPECT_EQ(ExceptionDescriptor::ReadFrom(mem_, 0x30100).ptid, 5u);

  ts_.RaiseException(6, ExceptionType::kDivideByZero, 0, 0);
  EXPECT_TRUE(ts_.halted());
}

TEST_F(HwtTest, ExceptionDescriptorWakesMonitoringHandler) {
  ts_.InitThread(4, 0x1000, false, /*edp=*/0x30000);
  ts_.thread(4).set_state(ThreadState::kRunnable);
  ts_.InitThread(5, 0x2000, true);
  ts_.thread(5).set_state(ThreadState::kRunnable);
  ASSERT_TRUE(ts_.Monitor(5, 0x30000).ok);
  ASSERT_TRUE(ts_.Mwait(5).blocked);

  ts_.RaiseException(4, ExceptionType::kPageFault, 0xbeef, 0);
  sim_.queue().RunAll();
  EXPECT_EQ(ts_.thread(5).state(), ThreadState::kRunnable);
  const ExceptionDescriptor d = ExceptionDescriptor::ReadFrom(mem_, 0x30000);
  EXPECT_EQ(d.addr, 0xbeefu);
  EXPECT_EQ(d.seq, 1u);
}

TEST_F(HwtTest, DescriptorWriteFaultEscalatesToWatcher) {
  // The faulter's EDP page is unwritable, so the descriptor write itself
  // faults. The thread monitoring that EDP line is the handler that would
  // have serviced the fault — it becomes the next faulting party and takes a
  // page-fault descriptor naming the undeliverable EDP, with the original
  // faulter in errcode.
  ts_.InitThread(4, 0x1000, /*supervisor=*/false, /*edp=*/0x30000);
  ts_.thread(4).set_state(ThreadState::kRunnable);
  ts_.InitThread(5, 0x2000, /*supervisor=*/true, /*edp=*/0x30100);
  ts_.thread(5).set_state(ThreadState::kRunnable);
  ASSERT_TRUE(ts_.Monitor(5, 0x30000).ok);
  ASSERT_TRUE(ts_.Mwait(5).blocked);
  mem_.AddUnwritableRange(0x30000, ExceptionDescriptor::kBytes);

  ts_.RaiseException(4, ExceptionType::kDivideByZero, 0, 0);
  sim_.queue().RunAll();
  EXPECT_FALSE(ts_.halted());
  const ExceptionDescriptor d = ExceptionDescriptor::ReadFrom(mem_, 0x30100);
  EXPECT_EQ(d.type, static_cast<uint32_t>(ExceptionType::kPageFault));
  EXPECT_EQ(d.ptid, 5u);
  EXPECT_EQ(d.addr, 0x30000u);   // the EDP the fabric refused to write
  EXPECT_EQ(d.errcode, 4u);      // the original faulter
  EXPECT_EQ(ts_.thread(4).state(), ThreadState::kDisabled);
  EXPECT_EQ(ts_.thread(5).state(), ThreadState::kDisabled);
  EXPECT_EQ(sim_.stats().GetCounter("hwt.exception_escalations"), 1u);
}

TEST_F(HwtTest, DescriptorWriteFaultWithNoWatcherHaltsCleanly) {
  // Unwritable EDP and nobody monitoring the line: the escalation walk has
  // nowhere to go, so the machine halts with a reportable reason — no
  // assertion, no silent wedge.
  ts_.InitThread(4, 0x1000, /*supervisor=*/false, /*edp=*/0x30000);
  ts_.thread(4).set_state(ThreadState::kRunnable);
  mem_.AddUnwritableRange(0x30000, ExceptionDescriptor::kBytes);

  ts_.RaiseException(4, ExceptionType::kDivideByZero, 0, 0);
  sim_.queue().RunAll();
  EXPECT_TRUE(ts_.halted());
  EXPECT_EQ(ts_.halt_info().reason, HaltReason::kHandlerChainExhausted);
  EXPECT_EQ(ts_.halt_info().ptid, 4u);
  EXPECT_EQ(ts_.halt_info().chain_depth, 1u);
  EXPECT_NE(ts_.halt_reason().find("handler chain exhausted"), std::string::npos);
}

TEST_F(HwtTest, EscalationChainTerminatesWhenEveryEdpIsUnwritable) {
  // A three-deep handler chain where every EDP page is unwritable: each
  // escalation step disables one watcher (tearing down its watches), so the
  // walk provably runs out of watchers and halts instead of looping.
  ts_.InitThread(4, 0x1000, /*supervisor=*/false, /*edp=*/0x30000);
  ts_.InitThread(5, 0x2000, /*supervisor=*/true, /*edp=*/0x30100);
  ts_.InitThread(6, 0x3000, /*supervisor=*/true, /*edp=*/0x30200);
  for (Ptid p : {4u, 5u, 6u}) {
    ts_.thread(p).set_state(ThreadState::kRunnable);
  }
  ASSERT_TRUE(ts_.Monitor(5, 0x30000).ok);
  ASSERT_TRUE(ts_.Mwait(5).blocked);
  ASSERT_TRUE(ts_.Monitor(6, 0x30100).ok);
  ASSERT_TRUE(ts_.Mwait(6).blocked);
  for (Addr edp : {Addr{0x30000}, Addr{0x30100}, Addr{0x30200}}) {
    mem_.AddUnwritableRange(edp, ExceptionDescriptor::kBytes);
  }

  ts_.RaiseException(4, ExceptionType::kPageFault, 0xdead, 0);
  sim_.queue().RunAll();
  EXPECT_TRUE(ts_.halted());
  EXPECT_EQ(ts_.halt_info().reason, HaltReason::kHandlerChainExhausted);
  EXPECT_EQ(ts_.halt_info().chain_depth, 3u);
  for (Ptid p : {4u, 5u, 6u}) {
    EXPECT_EQ(ts_.thread(p).state(), ThreadState::kDisabled);
  }
  EXPECT_EQ(sim_.stats().GetCounter("hwt.exception_escalations"), 3u);
}

TEST_F(HwtTest, CsrPrivilegeEnforced) {
  ts_.InitThread(1, 0x1000, /*supervisor=*/false, /*edp=*/0x30000);
  ts_.thread(1).set_state(ThreadState::kRunnable);
  EXPECT_TRUE(ts_.ReadCsr(1, Csr::kPtid).ok);
  EXPECT_EQ(ts_.ReadCsr(1, Csr::kPtid).value, 1u);
  const OpResult r = ts_.WriteCsr(1, Csr::kMode, 1);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(ts_.thread(1).state(), ThreadState::kDisabled);

  ts_.InitThread(0, 0x1000, /*supervisor=*/true);
  ts_.thread(0).set_state(ThreadState::kRunnable);
  EXPECT_TRUE(ts_.WriteCsr(0, Csr::kPrio, 8).ok);
  EXPECT_EQ(ts_.thread(0).arch().prio, 8u);
}

TEST_F(HwtTest, ContextStoreTiersByOccupancy) {
  // rf_slots=4, l2=4, l3=4, 16 threads/core: the first 4 admit to RF, then
  // spill L2 (4), L3 (4), DRAM (rest).
  ContextStore& store = ts_.store(0);
  EXPECT_EQ(store.rf_occupancy(), 4u);
  EXPECT_EQ(ts_.thread(0).tier(), StorageTier::kRegFile);
  EXPECT_EQ(ts_.thread(4).tier(), StorageTier::kL2);
  EXPECT_EQ(ts_.thread(8).tier(), StorageTier::kL3);
  EXPECT_EQ(ts_.thread(12).tier(), StorageTier::kDram);
}

TEST_F(HwtTest, RestoreLatencyOrderedByTier) {
  ContextStore& store = ts_.store(0);
  const Tick rf = store.RestoreLatency(ts_.thread(0));
  const Tick l2 = store.RestoreLatency(ts_.thread(4));
  const Tick l3 = store.RestoreLatency(ts_.thread(8));
  const Tick dram = store.RestoreLatency(ts_.thread(12));
  EXPECT_EQ(rf, ts_.config().pipeline_restore_cycles);
  EXPECT_LE(rf, l2);
  EXPECT_LT(l2, l3);
  EXPECT_LT(l3, dram);
  // §4 numbers: RF ~20 cycles; L2/L3 in the 10-50 cycle range.
  EXPECT_LE(l3, 60u);
}

TEST_F(HwtTest, WakePromotesToRegFileAndEvictsLru) {
  // Wake a DRAM-resident thread; it should land in the RF, evicting an
  // unpinned disabled thread.
  const Ptid cold = 12;
  EXPECT_EQ(ts_.thread(cold).tier(), StorageTier::kDram);
  ts_.InitThread(cold, 0x1000, false);
  ts_.MakeRunnable(cold);
  EXPECT_EQ(ts_.thread(cold).tier(), StorageTier::kRegFile);
  EXPECT_EQ(ts_.store(0).rf_occupancy(), 4u);
  EXPECT_GT(ts_.thread(cold).ready_at(), sim_.now());
}

TEST_F(HwtTest, PinnedThreadsAreNotEvicted) {
  for (Ptid p = 0; p < 4; p++) {
    ts_.thread(p).set_pinned(true);
  }
  const Ptid cold = 12;
  ts_.MakeRunnable(cold);
  // No eviction possible: the thread stays in DRAM and pays that latency.
  EXPECT_EQ(ts_.thread(cold).tier(), StorageTier::kDram);
}

TEST_F(HwtTest, WakeVictimSpillsIntoFreedTierSlot) {
  // Regression: rf/l2/l3 = 4/4/4 with 16 threads means both spill tiers start
  // full. Waking the L2-resident thread 4 frees its L2 slot; the evicted RF
  // victim must reuse exactly that slot. The old code released the waker's
  // slot only after picking the victim's spill tier, so the victim saw a full
  // L2/L3 and dropped all the way to DRAM.
  ContextStore& store = ts_.store(0);
  ASSERT_EQ(ts_.thread(4).tier(), StorageTier::kL2);
  ASSERT_EQ(store.l2_used(), 4u);
  ASSERT_EQ(store.l3_used(), 4u);
  store.EnsureResident(ts_.thread(4));
  EXPECT_EQ(ts_.thread(4).tier(), StorageTier::kRegFile);
  EXPECT_EQ(ts_.thread(0).tier(), StorageTier::kL2);  // LRU victim took the freed slot
  EXPECT_EQ(store.l2_used(), 4u);
  EXPECT_EQ(store.l3_used(), 4u);
}

TEST_F(HwtTest, TierSlotAccountingStaysBoundedAcrossWakes) {
  ContextStore& store = ts_.store(0);
  // Wake every spilled thread in turn. Each wake frees at most one slot and
  // the victim takes it straight back, so the counters must never exceed
  // capacity and must end exactly full.
  for (Ptid p = 4; p < 16; p++) {
    store.EnsureResident(ts_.thread(p));
    EXPECT_LE(store.l2_used(), 4u);
    EXPECT_LE(store.l3_used(), 4u);
    EXPECT_EQ(store.rf_occupancy(), 4u);
  }
  EXPECT_EQ(store.l2_used(), 4u);
  EXPECT_EQ(store.l3_used(), 4u);
}

TEST_F(HwtTest, AllPinnedWakeKeepsSlotAccounting) {
  // Regression: when every RF thread is pinned the waker keeps its tier, so
  // the slot released up front must be re-acquired. The old code leaked it,
  // draining l2_used() one wake at a time until the counter underflowed.
  ContextStore& store = ts_.store(0);
  for (Ptid p = 0; p < 4; p++) {
    ts_.thread(p).set_pinned(true);
  }
  for (int i = 0; i < 3; i++) {
    store.EnsureResident(ts_.thread(4));
    EXPECT_EQ(ts_.thread(4).tier(), StorageTier::kL2);
    EXPECT_EQ(store.l2_used(), 4u);
  }
  EXPECT_EQ(store.rf_occupancy(), 4u);
  EXPECT_EQ(store.l3_used(), 4u);
}

TEST_F(HwtTest, DirtyTrackingShrinksTransfer) {
  // A thread that used few registers restores faster than the full-state
  // transfer when dirty tracking is on.
  HwThread& sparse = ts_.thread(4);  // L2 tier
  sparse.ResetUsedRegs();
  sparse.MarkRegUsed(1);
  const Tick with_tracking = ts_.store(0).RestoreLatency(sparse);

  HwtConfig cfg2 = MakeConfig();
  cfg2.dirty_register_tracking = false;
  Simulation sim2;
  MemorySystem mem2(sim2, MemConfig{}, 1);
  ThreadSystem ts2(sim2, mem2, cfg2, 1);
  const Tick without_tracking = ts2.store(0).RestoreLatency(ts2.thread(4));
  EXPECT_LT(with_tracking, without_tracking);
}

TEST(SchedQueueTest, RoundRobinRotates) {
  Simulation sim;
  HwThread a(0, 0);
  HwThread b(1, 0);
  HwThread c(2, 0);
  for (HwThread* t : {&a, &b, &c}) {
    t->set_state(ThreadState::kRunnable);
  }
  SchedQueue q;
  q.Add(&a);
  q.Add(&b);
  q.Add(&c);
  std::vector<HwThread*> picked;
  std::vector<Ptid> heads;
  for (int i = 0; i < 6; i++) {
    q.PickUpTo(100, 1, &picked);
    ASSERT_EQ(picked.size(), 1u);
    heads.push_back(picked[0]->ptid());
  }
  EXPECT_EQ(heads, (std::vector<Ptid>{0, 1, 2, 0, 1, 2}));
}

TEST(SchedQueueTest, WeightedShareFollowsPrio) {
  HwThread a(0, 0);
  HwThread b(1, 0);
  a.set_state(ThreadState::kRunnable);
  b.set_state(ThreadState::kRunnable);
  a.arch().prio = 3;
  SchedQueue q;
  q.Add(&a);
  q.Add(&b);
  int a_picks = 0;
  std::vector<HwThread*> picked;
  for (int i = 0; i < 400; i++) {
    q.PickUpTo(100, 1, &picked);
    ASSERT_EQ(picked.size(), 1u);
    a_picks += picked[0]->ptid() == 0 ? 1 : 0;
  }
  EXPECT_EQ(a_picks, 300);  // 3:1 share
}

TEST(SchedQueueTest, SmtWidthPicksDistinctThreads) {
  HwThread a(0, 0);
  HwThread b(1, 0);
  a.set_state(ThreadState::kRunnable);
  b.set_state(ThreadState::kRunnable);
  SchedQueue q;
  q.Add(&a);
  q.Add(&b);
  std::vector<HwThread*> picked;
  q.PickUpTo(0, 2, &picked);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_NE(picked[0]->ptid(), picked[1]->ptid());
}

TEST(SchedQueueTest, SkipsThreadsStillRestoring) {
  HwThread a(0, 0);
  HwThread b(1, 0);
  a.set_state(ThreadState::kRunnable);
  b.set_state(ThreadState::kRunnable);
  a.set_ready_at(50);
  SchedQueue q;
  q.Add(&a);
  q.Add(&b);
  std::vector<HwThread*> picked;
  q.PickUpTo(10, 2, &picked);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0]->ptid(), 1u);
  EXPECT_EQ(q.NextReadyTick(10), 50u);
  q.PickUpTo(50, 2, &picked);
  EXPECT_EQ(picked.size(), 2u);
}

TEST(SchedQueueTest, FrontInsertPreempts) {
  HwThread a(0, 0);
  HwThread b(1, 0);
  HwThread critical(2, 0);
  for (HwThread* t : {&a, &b, &critical}) {
    t->set_state(ThreadState::kRunnable);
  }
  SchedQueue q;
  q.Add(&a);
  q.Add(&b);
  std::vector<HwThread*> picked;
  q.PickUpTo(0, 1, &picked);  // cursor advances past a
  q.Add(&critical, /*front=*/true);
  q.PickUpTo(0, 1, &picked);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0]->ptid(), 2u);
}

TEST(SchedQueueTest, RemoveKeepsRotationConsistent) {
  HwThread a(0, 0);
  HwThread b(1, 0);
  HwThread c(2, 0);
  for (HwThread* t : {&a, &b, &c}) {
    t->set_state(ThreadState::kRunnable);
  }
  SchedQueue q;
  q.Add(&a);
  q.Add(&b);
  q.Add(&c);
  std::vector<HwThread*> picked;
  q.PickUpTo(0, 1, &picked);  // a
  q.Remove(1);
  q.PickUpTo(0, 1, &picked);
  EXPECT_EQ(picked[0]->ptid(), 2u);
  q.PickUpTo(0, 1, &picked);
  EXPECT_EQ(picked[0]->ptid(), 0u);
  EXPECT_EQ(q.Size(), 2u);
}

TEST_F(HwtTest, DemandRestoreWithoutPrefetch) {
  HwtConfig cfg = MakeConfig();
  cfg.prefetch_on_wake = false;
  Simulation sim;
  MemorySystem mem(sim, MemConfig{}, 1);
  ThreadSystem ts(sim, mem, cfg, 1);
  const Ptid cold = 12;  // DRAM tier
  ts.InitThread(cold, 0x1000, false);
  ts.MakeRunnable(cold);
  EXPECT_TRUE(ts.NeedsRestore(cold));
  EXPECT_EQ(ts.thread(cold).ready_at(), sim.now());  // looks ready until picked
  ts.BeginDemandRestore(cold);
  EXPECT_FALSE(ts.NeedsRestore(cold));
  EXPECT_GT(ts.thread(cold).ready_at(), sim.now());
}

TEST_F(HwtTest, WakeHookFires) {
  int wakes = 0;
  ts_.SetWakeHook(0, [&] { wakes++; });
  ts_.InitThread(3, 0x1000, false);
  ts_.MakeRunnable(3);
  EXPECT_EQ(wakes, 1);
}

TEST_F(HwtTest, MonitorOverflowRaisesException) {
  HwtConfig cfg = MakeConfig();
  Simulation sim;
  MemConfig mc;
  mc.monitor.max_watches_per_thread = 1;
  MemorySystem mem(sim, mc, 1);
  ThreadSystem ts(sim, mem, cfg, 1);
  ts.InitThread(2, 0x1000, false, /*edp=*/0x30000);
  ts.thread(2).set_state(ThreadState::kRunnable);
  EXPECT_TRUE(ts.Monitor(2, 0x8000).ok);
  EXPECT_FALSE(ts.Monitor(2, 0x9000).ok);
  EXPECT_EQ(ts.thread(2).state(), ThreadState::kDisabled);
}

}  // namespace
}  // namespace casc
