// Unit tests for instruction encoding/decoding and the assembler.
#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/isa/isa.h"
#include "src/mem/phys_mem.h"

namespace casc {
namespace {

TEST(EncodingTest, RoundTripRFormat) {
  const Instruction in{Opcode::kAdd, 3, 7, 11, 0};
  EXPECT_EQ(Decode(Encode(in)), in);
}

TEST(EncodingTest, RoundTripIFormatNegativeImm) {
  const Instruction in{Opcode::kAddi, 5, 6, 0, -42};
  EXPECT_EQ(Decode(Encode(in)), in);
}

TEST(EncodingTest, RoundTripJFormat) {
  for (int32_t imm : {0, 1, -1, 1000, -1000, (1 << 25) - 1, -(1 << 25)}) {
    const Instruction in{Opcode::kJal, 0, 0, 0, imm};
    EXPECT_EQ(Decode(Encode(in)).imm, imm) << imm;
  }
}

TEST(EncodingTest, AllOpcodesRoundTrip) {
  for (uint32_t op = 0; op < static_cast<uint32_t>(Opcode::kCount); op++) {
    Instruction in;
    in.op = static_cast<Opcode>(op);
    in.rd = 1;
    in.rs1 = 2;
    if (!IsIFormat(in.op) && !IsJFormat(in.op)) {
      in.rs2 = 3;
    } else if (!IsJFormat(in.op)) {
      in.imm = 9;
    } else {
      in.imm = 9;
      in.rd = in.rs1 = 0;
    }
    EXPECT_EQ(Decode(Encode(in)), in) << OpcodeName(in.op);
  }
}

TEST(RegisterTest, ParsesNamesAndAliases) {
  EXPECT_EQ(ParseRegister("r0"), 0);
  EXPECT_EQ(ParseRegister("r31"), 31);
  EXPECT_EQ(ParseRegister("zero"), 0);
  EXPECT_EQ(ParseRegister("ra"), 31);
  EXPECT_EQ(ParseRegister("sp"), 30);
  EXPECT_EQ(ParseRegister("a0"), 10);
  EXPECT_EQ(ParseRegister("a7"), 17);
  EXPECT_EQ(ParseRegister("t0"), 18);
  EXPECT_EQ(ParseRegister("bogus"), -1);
  EXPECT_EQ(ParseRegister("r32"), -1);
}

Program MustAssemble(const std::string& src, Addr base = 0x1000) {
  auto result = Assembler::Assemble(src, base);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

Instruction InstAt(const Program& p, Addr addr) {
  uint32_t word = 0;
  std::memcpy(&word, &p.bytes[addr - p.base], 4);
  return Decode(word);
}

TEST(AssemblerTest, BasicArithmetic) {
  const Program p = MustAssemble("add a0, a1, a2\naddi t0, a0, -5\n");
  const Instruction i0 = InstAt(p, 0x1000);
  EXPECT_EQ(i0.op, Opcode::kAdd);
  EXPECT_EQ(i0.rd, 10);
  EXPECT_EQ(i0.rs1, 11);
  EXPECT_EQ(i0.rs2, 12);
  const Instruction i1 = InstAt(p, 0x1004);
  EXPECT_EQ(i1.op, Opcode::kAddi);
  EXPECT_EQ(i1.imm, -5);
}

TEST(AssemblerTest, LiShortAndLong) {
  const Program p = MustAssemble("li a0, 100\nli a1, 0x12345678\n");
  EXPECT_EQ(InstAt(p, 0x1000).op, Opcode::kAddi);
  EXPECT_EQ(InstAt(p, 0x1004).op, Opcode::kLui);
  EXPECT_EQ(InstAt(p, 0x1004).imm, 0x1234);
  EXPECT_EQ(InstAt(p, 0x1008).op, Opcode::kOri);
  EXPECT_EQ(InstAt(p, 0x1008).imm, 0x5678);
}

TEST(AssemblerTest, LabelsAndBranches) {
  const Program p = MustAssemble(
      "loop:\n"
      "  addi a0, a0, 1\n"
      "  bne a0, a1, loop\n"
      "  halt\n");
  const Instruction br = InstAt(p, 0x1004);
  EXPECT_EQ(br.op, Opcode::kBne);
  EXPECT_EQ(br.imm, -2);  // back to 0x1000 from pc+4 = 0x1008
  EXPECT_EQ(p.Symbol("loop"), 0x1000u);
}

TEST(AssemblerTest, MemoryOperands) {
  const Program p = MustAssemble("ld a0, 16(sp)\nsd a1, -8(a0)\nlw a2, (a3)\n");
  const Instruction ld = InstAt(p, 0x1000);
  EXPECT_EQ(ld.op, Opcode::kLd);
  EXPECT_EQ(ld.rd, 10);
  EXPECT_EQ(ld.rs1, 30);
  EXPECT_EQ(ld.imm, 16);
  const Instruction sd = InstAt(p, 0x1004);
  EXPECT_EQ(sd.op, Opcode::kSd);
  EXPECT_EQ(sd.rd, 11);   // source value register
  EXPECT_EQ(sd.rs1, 10);  // base
  EXPECT_EQ(sd.imm, -8);
  EXPECT_EQ(InstAt(p, 0x1008).imm, 0);
}

TEST(AssemblerTest, ExtensionInstructions) {
  const Program p = MustAssemble(
      "monitor a0\n"
      "mwait\n"
      "start a1\n"
      "stop a2\n"
      "rpull a3, a1, pc\n"
      "rpush a1, edp, a4\n"
      "invtid a1, a2\n");
  EXPECT_EQ(InstAt(p, 0x1000).op, Opcode::kMonitor);
  EXPECT_EQ(InstAt(p, 0x1000).rs1, 10);
  EXPECT_EQ(InstAt(p, 0x1004).op, Opcode::kMwait);
  EXPECT_EQ(InstAt(p, 0x1008).op, Opcode::kStart);
  EXPECT_EQ(InstAt(p, 0x100c).op, Opcode::kStop);
  const Instruction rpull = InstAt(p, 0x1010);
  EXPECT_EQ(rpull.op, Opcode::kRpull);
  EXPECT_EQ(rpull.rd, 13);
  EXPECT_EQ(rpull.rs1, 11);
  EXPECT_EQ(rpull.imm, static_cast<int32_t>(RemoteReg::kPc));
  const Instruction rpush = InstAt(p, 0x1014);
  EXPECT_EQ(rpush.op, Opcode::kRpush);
  EXPECT_EQ(rpush.rs1, 11);
  EXPECT_EQ(rpush.rd, 14);
  EXPECT_EQ(rpush.imm, static_cast<int32_t>(RemoteReg::kEdp));
  const Instruction inv = InstAt(p, 0x1018);
  EXPECT_EQ(inv.op, Opcode::kInvtid);
  EXPECT_EQ(inv.rs1, 11);
  EXPECT_EQ(inv.rs2, 12);
}

TEST(AssemblerTest, CsrNamesResolve) {
  const Program p = MustAssemble("csrrd a0, ptid\ncsrwr edp, a1\ncsrrd a2, 7\n");
  EXPECT_EQ(InstAt(p, 0x1000).imm, static_cast<int32_t>(Csr::kPtid));
  const Instruction wr = InstAt(p, 0x1004);
  EXPECT_EQ(wr.op, Opcode::kCsrwr);
  EXPECT_EQ(wr.imm, static_cast<int32_t>(Csr::kEdp));
  EXPECT_EQ(wr.rd, 11);
  EXPECT_EQ(InstAt(p, 0x1008).imm, 7);
}

TEST(AssemblerTest, DirectivesAndSymbols) {
  const Program p = MustAssemble(
      "  j over\n"
      "data:\n"
      "  .word 0xabcdef0123456789\n"
      "  .space 8\n"
      "over:\n"
      "  la a0, data\n"
      "  halt\n");
  EXPECT_EQ(p.Symbol("data"), 0x1004u);
  EXPECT_EQ(p.Symbol("over"), 0x1014u);
  uint64_t w = 0;
  std::memcpy(&w, &p.bytes[4], 8);
  EXPECT_EQ(w, 0xabcdef0123456789ull);
  // la expands to lui+ori of 0x1004.
  EXPECT_EQ(InstAt(p, 0x1014).op, Opcode::kLui);
  EXPECT_EQ(InstAt(p, 0x1018).imm, 0x1004);
}

TEST(AssemblerTest, CallAndRet) {
  const Program p = MustAssemble(
      "  call func\n"
      "  halt\n"
      "func:\n"
      "  ret\n");
  const Instruction call = InstAt(p, 0x1000);
  EXPECT_EQ(call.op, Opcode::kJal);
  EXPECT_EQ(call.imm, 1);  // 0x1008 from 0x1004
  const Instruction ret = InstAt(p, 0x1008);
  EXPECT_EQ(ret.op, Opcode::kJalr);
  EXPECT_EQ(ret.rs1, 31);
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  auto r = Assembler::Assemble("nop\nfrobnicate a0\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 2"), std::string::npos);
  r = Assembler::Assemble("beq a0, a1, nowhere\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown symbol"), std::string::npos);
  r = Assembler::Assemble("dup:\nnop\ndup:\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate"), std::string::npos);
}

TEST(AssemblerTest, LoadIntoMemory) {
  PhysicalMemory mem;
  const Program p = MustAssemble("li a0, 7\nhalt\n");
  p.LoadInto(mem);
  EXPECT_EQ(Decode(mem.Read32(0x1000)).op, Opcode::kAddi);
  EXPECT_EQ(Decode(mem.Read32(0x1004)).op, Opcode::kHalt);
}

TEST(DisassemblerTest, FormatsCommonForms) {
  EXPECT_EQ(Disassemble(Instruction{Opcode::kAdd, 1, 2, 3, 0}), "add r1, r2, r3");
  EXPECT_EQ(Disassemble(Instruction{Opcode::kLd, 4, 5, 0, 16}), "ld r4, 16(r5)");
  EXPECT_EQ(Disassemble(Instruction{Opcode::kMwait, 0, 0, 0, 0}), "mwait");
  EXPECT_EQ(Disassemble(Instruction{Opcode::kStart, 0, 9, 0, 0}), "start r9");
}

}  // namespace
}  // namespace casc
